#include "src/obs/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/obs/metrics.hpp"

namespace faucets::obs {

namespace {

TimelineRow to_row(const Span& s) {
  TimelineRow row;
  row.id = s.id;
  row.kind = s.kind;
  row.start = s.start;
  row.end = s.end;
  row.value = s.value;
  return row;
}

void sort_rows(std::vector<TimelineRow>& rows) {
  std::sort(rows.begin(), rows.end(),
            [](const TimelineRow& a, const TimelineRow& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.id.value() < b.id.value();
            });
}

/// children[i] = indices of spans whose parent is span i.
std::vector<std::vector<std::size_t>> build_children(const SpanTracker& spans) {
  std::vector<std::vector<std::size_t>> children(spans.size());
  const std::vector<Span>& all = spans.spans();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const SpanId parent = all[i].parent;
    if (parent.valid() && parent.value() < all.size()) {
      children[static_cast<std::size_t>(parent.value())].push_back(i);
    }
  }
  return children;
}

std::vector<TimelineRow> collect_subtree(
    const SpanTracker& spans, std::size_t root_index,
    const std::vector<std::vector<std::size_t>>& children) {
  const std::vector<Span>& all = spans.spans();
  std::vector<TimelineRow> rows;
  std::vector<std::size_t> stack{root_index};
  while (!stack.empty()) {
    const std::size_t i = stack.back();
    stack.pop_back();
    rows.push_back(to_row(all[i]));
    for (const std::size_t c : children[i]) stack.push_back(c);
  }
  sort_rows(rows);
  return rows;
}

struct Interval {
  double a = 0.0;
  double b = 0.0;
};

bool covers(const std::vector<Interval>& ivs, double t) noexcept {
  for (const Interval& iv : ivs) {
    if (iv.a <= t && t < iv.b) return true;
  }
  return false;
}

/// Kahan-compensated accumulator so the six phase sums telescope back to the
/// makespan within 1e-9 even over thousands of tiny segments.
struct Compensated {
  double sum = 0.0;
  double c = 0.0;

  void add(double v) noexcept {
    const double y = v - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
};

}  // namespace

std::vector<TimelineRow> job_timeline_rows(const SpanTracker& spans,
                                           ClusterId cluster, JobId job) {
  std::vector<TimelineRow> rows;
  for (const Span* span : spans.for_job(cluster, job)) rows.push_back(to_row(*span));
  return rows;
}

std::vector<TimelineRow> subtree_rows(const SpanTracker& spans, SpanId root) {
  if (!root.valid() || root.value() >= spans.size()) return {};
  return collect_subtree(spans, static_cast<std::size_t>(root.value()),
                         build_children(spans));
}

std::string format_timeline_row(const TimelineRow& row) {
  std::ostringstream line;
  line << "[" << row.start;
  if (row.open()) {
    line << " ..)";
  } else {
    line << " " << row.end << ")";
  }
  line << " " << to_string(row.kind);
  if (row.value != 0.0) line << " value=" << row.value;
  return line.str();
}

JobPhaseRecord decompose_rows(const std::vector<TimelineRow>& rows,
                              const TimelineRow& root) {
  JobPhaseRecord rec;
  rec.root = root.id;
  rec.submit = root.start;
  rec.end = root.open() ? root.start : root.end;

  std::vector<Interval> run, queue, award, rfb;
  std::vector<double> boundaries{rec.submit, rec.end};
  double first_run_start = std::numeric_limits<double>::infinity();
  double best_terminal = -std::numeric_limits<double>::infinity();
  std::uint64_t best_terminal_id = 0;

  const auto add_interval = [&](std::vector<Interval>& bucket, double a, double b) {
    a = std::max(a, rec.submit);
    b = std::min(b, rec.end);
    if (a >= b) return;
    bucket.push_back({a, b});
    boundaries.push_back(a);
    boundaries.push_back(b);
  };

  for (const TimelineRow& row : rows) {
    if (row.id == root.id) continue;
    // A child left open inside a closed submission (engine stopped mid-flight)
    // is clamped to the submission's end.
    const double end = row.open() ? rec.end : row.end;
    switch (row.kind) {
      case SpanKind::kRun:
        first_run_start = std::min(first_run_start, std::max(row.start, rec.submit));
        add_interval(run, row.start, end);
        break;
      case SpanKind::kQueue:
        add_interval(queue, row.start, end);
        break;
      case SpanKind::kAward:
        ++rec.award_attempts;
        add_interval(award, row.start, end);
        break;
      case SpanKind::kRfb:
        ++rec.rfb_rounds;
        add_interval(rfb, row.start, end);
        break;
      case SpanKind::kBid:
        ++rec.bids;
        break;
      case SpanKind::kReconfig:
        ++rec.reconfigs;
        break;
      case SpanKind::kEvicted:
        ++rec.evictions;
        [[fallthrough]];
      case SpanKind::kComplete:
      case SpanKind::kUnplaced:
      case SpanKind::kFailed:
        if (row.start > best_terminal ||
            (row.start == best_terminal && row.id.value() > best_terminal_id)) {
          best_terminal = row.start;
          best_terminal_id = row.id.value();
          rec.outcome = row.kind;
        }
        break;
      default:
        break;
    }
  }

  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());

  std::array<Compensated, kPhaseCount> acc{};
  const auto credit = [&](Phase p, double dt) {
    acc[static_cast<std::size_t>(p)].add(dt);
  };
  for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
    const double t0 = boundaries[i];
    const double t1 = boundaries[i + 1];
    if (t1 <= rec.submit || t0 >= rec.end) continue;
    const double mid = t0 + (t1 - t0) / 2.0;
    const double dt = t1 - t0;
    // Exclusive priority: run > queue > award > bid wait > other. Queue time
    // after the job first ran is reconfiguration churn, not admission wait.
    if (covers(run, mid)) {
      credit(Phase::kRun, dt);
    } else if (covers(queue, mid)) {
      credit(t0 >= first_run_start ? Phase::kReconfig : Phase::kQueueWait, dt);
    } else if (covers(award, mid)) {
      credit(Phase::kAwardWait, dt);
    } else if (covers(rfb, mid)) {
      credit(Phase::kBidWait, dt);
    } else {
      credit(Phase::kOther, dt);
    }
  }
  for (std::size_t p = 0; p < kPhaseCount; ++p) rec.phases[p] = acc[p].sum;
  return rec;
}

SpanAnalysis analyze_spans(const SpanTracker& spans) {
  SpanAnalysis out;
  const std::vector<Span>& all = spans.spans();
  const std::vector<std::vector<std::size_t>> children = build_children(spans);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Span& root = all[i];
    if (root.kind != SpanKind::kSubmission || root.parent.valid()) continue;
    if (root.open()) {
      ++out.open_roots;
      continue;
    }
    const std::vector<TimelineRow> rows = collect_subtree(spans, i, children);
    JobPhaseRecord rec = decompose_rows(rows, to_row(root));
    rec.user = root.user;
    // Identity of the last placement: bind_job back-fills ancestors with the
    // first placement, so prefer the latest-starting span carrying one.
    rec.cluster = root.cluster;
    rec.job = root.job;
    for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
      if (const Span* s = spans.find(it->id); s != nullptr && s->cluster.valid()) {
        rec.cluster = s->cluster;
        rec.job = s->job;
        break;
      }
    }
    out.jobs.push_back(rec);
  }
  return out;
}

std::array<double, kPhaseCount> SpanAnalysis::mean_phases() const {
  std::array<double, kPhaseCount> out{};
  if (jobs.empty()) return out;
  for (const JobPhaseRecord& rec : jobs) {
    for (std::size_t p = 0; p < kPhaseCount; ++p) out[p] += rec.phases[p];
  }
  for (double& v : out) v /= static_cast<double>(jobs.size());
  return out;
}

double SpanAnalysis::phase_quantile(Phase phase, double q) const {
  if (jobs.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(jobs.size());
  for (const JobPhaseRecord& rec : jobs) values.push_back(rec.phase(phase));
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(values.size()))));
  return values[rank - 1];
}

std::size_t SpanAnalysis::count_outcome(SpanKind kind) const {
  std::size_t n = 0;
  for (const JobPhaseRecord& rec : jobs) {
    if (rec.outcome == kind) ++n;
  }
  return n;
}

void observe_phase_histograms(MetricsRegistry& metrics,
                              const SpanAnalysis& analysis) {
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const Phase phase = static_cast<Phase>(p);
    std::string name = "faucets_phase_seconds{phase=\"";
    name += to_string(phase);
    name += "\"}";
    Histogram& h = metrics.histogram(name, exponential_buckets(0.01, 2.0, 26),
                                     "Seconds per exclusive latency phase");
    for (const JobPhaseRecord& rec : analysis.jobs) h.observe(rec.phase(phase));
  }
}

void DeadlineRow::add(bool finished, double finish_time, bool has_deadline,
                      double soft_deadline, double hard_deadline,
                      double realized, double max_payoff) {
  ++jobs;
  payoff_realized += realized;
  payoff_max += max_payoff;
  if (!finished) {
    ++unfinished;
    return;
  }
  if (!has_deadline || finish_time <= soft_deadline) {
    ++met_soft;
  } else if (finish_time <= hard_deadline) {
    ++met_hard;
  } else {
    ++penalized;
  }
}

}  // namespace faucets::obs
