// Typed trace events and the bounded ring buffer they live in.
//
// The old TraceRecorder stored two heap-allocated std::strings per record,
// which undercut the zero-allocation event engine: a single record() on the
// hot path cost more than scheduling the event it described. This layer
// replaces it with a fixed TraceEventKind enum, a small POD payload union,
// and a power-of-two ring: record() is a struct copy into preallocated
// storage, wraparound eviction is O(1), and AppSpector/tests/exporters read
// events back oldest-first without reparsing strings.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>
#include <vector>

#include "src/util/ids.hpp"

namespace faucets::obs {

/// Everything the grid traces, grouped by payload family (see payload_of).
enum class TraceEventKind : std::uint8_t {
  // Job lifecycle on a Compute Server (JobPayload).
  kJobAccepted = 0,
  kJobRejected,
  kJobStarted,
  kJobResumed,
  kJobShrunk,
  kJobExpanded,
  kJobVacated,
  kJobCompleted,
  kJobEvicted,
  kJobFailed,
  // Market protocol (MarketPayload).
  kRfbIssued,
  kBidIssued,
  kBidDeclined,
  kAwardConfirmed,
  kAwardRefused,
  kJobPlaced,
  kJobUnplaced,
  // Grid-level recovery (MarketPayload: the client-side request).
  kJobMigrated,
  kWatchdogRestart,
  // Two-phase award: reserve -> commit/abort with a daemon-side lease
  // (MarketPayload; kLeaseExpired carries the reservation id as `request`).
  kAwardReserved,
  kAwardAborted,
  kLeaseExpired,
  // Retry/timeout state machines (MarketPayload: `price` is the attempt
  // number that timed out or gave up).
  kRetryAttempt,
  kRetryExhausted,
  // Network fabric (NetPayload).
  kNetDrop,
  // Authentication at the Central Server (AuthPayload).
  kAuthOk,
  kAuthDenied,
};

inline constexpr std::size_t kTraceEventKindCount =
    static_cast<std::size_t>(TraceEventKind::kAuthDenied) + 1;

/// Which member of TraceEvent::Payload a kind carries.
enum class TracePayload : std::uint8_t { kJob, kMarket, kNet, kAuth };

[[nodiscard]] constexpr TracePayload payload_of(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kJobAccepted:
    case TraceEventKind::kJobRejected:
    case TraceEventKind::kJobStarted:
    case TraceEventKind::kJobResumed:
    case TraceEventKind::kJobShrunk:
    case TraceEventKind::kJobExpanded:
    case TraceEventKind::kJobVacated:
    case TraceEventKind::kJobCompleted:
    case TraceEventKind::kJobEvicted:
    case TraceEventKind::kJobFailed:
      return TracePayload::kJob;
    case TraceEventKind::kRfbIssued:
    case TraceEventKind::kBidIssued:
    case TraceEventKind::kBidDeclined:
    case TraceEventKind::kAwardConfirmed:
    case TraceEventKind::kAwardRefused:
    case TraceEventKind::kJobPlaced:
    case TraceEventKind::kJobUnplaced:
    case TraceEventKind::kJobMigrated:
    case TraceEventKind::kWatchdogRestart:
    case TraceEventKind::kAwardReserved:
    case TraceEventKind::kAwardAborted:
    case TraceEventKind::kLeaseExpired:
    case TraceEventKind::kRetryAttempt:
    case TraceEventKind::kRetryExhausted:
      return TracePayload::kMarket;
    case TraceEventKind::kNetDrop:
      return TracePayload::kNet;
    case TraceEventKind::kAuthOk:
    case TraceEventKind::kAuthDenied:
      return TracePayload::kAuth;
  }
  return TracePayload::kJob;
}

/// Stable wire name of a kind, used by the JSONL exporter and in tests.
[[nodiscard]] constexpr std::string_view to_string(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kJobAccepted: return "JOB_ACCEPTED";
    case TraceEventKind::kJobRejected: return "JOB_REJECTED";
    case TraceEventKind::kJobStarted: return "JOB_STARTED";
    case TraceEventKind::kJobResumed: return "JOB_RESUMED";
    case TraceEventKind::kJobShrunk: return "JOB_SHRUNK";
    case TraceEventKind::kJobExpanded: return "JOB_EXPANDED";
    case TraceEventKind::kJobVacated: return "JOB_VACATED";
    case TraceEventKind::kJobCompleted: return "JOB_COMPLETED";
    case TraceEventKind::kJobEvicted: return "JOB_EVICTED";
    case TraceEventKind::kJobFailed: return "JOB_FAILED";
    case TraceEventKind::kRfbIssued: return "RFB_ISSUED";
    case TraceEventKind::kBidIssued: return "BID_ISSUED";
    case TraceEventKind::kBidDeclined: return "BID_DECLINED";
    case TraceEventKind::kAwardConfirmed: return "AWARD_CONFIRMED";
    case TraceEventKind::kAwardRefused: return "AWARD_REFUSED";
    case TraceEventKind::kJobPlaced: return "JOB_PLACED";
    case TraceEventKind::kJobUnplaced: return "JOB_UNPLACED";
    case TraceEventKind::kJobMigrated: return "JOB_MIGRATED";
    case TraceEventKind::kWatchdogRestart: return "WATCHDOG_RESTART";
    case TraceEventKind::kAwardReserved: return "AWARD_RESERVED";
    case TraceEventKind::kAwardAborted: return "AWARD_ABORTED";
    case TraceEventKind::kLeaseExpired: return "LEASE_EXPIRED";
    case TraceEventKind::kRetryAttempt: return "RETRY_ATTEMPT";
    case TraceEventKind::kRetryExhausted: return "RETRY_EXHAUSTED";
    case TraceEventKind::kNetDrop: return "NET_DROP";
    case TraceEventKind::kAuthOk: return "AUTH_OK";
    case TraceEventKind::kAuthDenied: return "AUTH_DENIED";
  }
  return "?";
}

/// Why the network dropped a message (NetPayload::reason). The first two are
/// lifecycle drops (an endpoint was gone); the rest are injected or inferred
/// faults, so exports can tell chaos-testing losses from ordinary shutdowns.
enum class DropReason : std::uint8_t {
  kSenderDetached = 0,
  kReceiverDetached = 1,
  kFaultInjected = 2,  // seeded random loss from the fault injector
  kPartitioned = 3,    // an endpoint was inside a partition window
  kTimeout = 4,        // a sender gave up waiting and retried/aborted
};

inline constexpr std::size_t kDropReasonCount =
    static_cast<std::size_t>(DropReason::kTimeout) + 1;

[[nodiscard]] constexpr std::string_view to_string(DropReason reason) noexcept {
  switch (reason) {
    case DropReason::kSenderDetached: return "sender_detached";
    case DropReason::kReceiverDetached: return "receiver_detached";
    case DropReason::kFaultInjected: return "fault_injected";
    case DropReason::kPartitioned: return "partitioned";
    case DropReason::kTimeout: return "timeout";
  }
  return "?";
}

/// Canonical-order stamp attached to a trace record at record() time: the
/// executing event's scheduling rank and creation identity (see
/// sim::Engine). (time, rank, creator, cseq) is a shard-count-independent
/// total order over executions, so merged views of per-shard rings sort
/// identically no matter how the grid was partitioned.
struct TraceStamp {
  double rank = 0.0;
  std::uint64_t creator = 0;
  std::uint64_t cseq = 0;
};

/// One trace record: what happened, to whom, when. Trivially copyable —
/// recording is a struct copy into the ring, never an allocation.
struct TraceEvent {
  /// Payload for job lifecycle events on one Compute Server.
  struct JobPayload {
    JobId job;
    UserId user;
    ClusterId cluster;
    std::int32_t procs = 0;
  };
  /// Payload for the bid/award protocol and client-side placement events.
  struct MarketPayload {
    RequestId request;
    BidId bid;
    double price = 0.0;
  };
  /// Payload for network drops. `message_kind` is the sim::MessageKind value
  /// of the dropped message (kept as a raw byte so this header does not
  /// depend on the sim layer).
  struct NetPayload {
    EntityId peer;  // the other end of the failed delivery
    std::uint8_t message_kind = 0;
    DropReason reason = DropReason::kSenderDetached;
  };
  /// Payload for credential checks at the Central Server.
  struct AuthPayload {
    UserId user;
    RequestId request;
  };

  union Payload {
    JobPayload job{};
    MarketPayload market;
    NetPayload net;
    AuthPayload auth;
  };

  double time = 0.0;
  EntityId entity;  // the emitting entity (or cluster scope for CM events)
  TraceEventKind kind = TraceEventKind::kJobAccepted;
  Payload payload{};
};

static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "trace events must copy into the ring without allocating");

// ------------------------------------------------------------ constructors

[[nodiscard]] inline TraceEvent job_event(double time, EntityId entity,
                                          TraceEventKind kind, ClusterId cluster,
                                          JobId job, UserId user, int procs) {
  TraceEvent ev;
  ev.time = time;
  ev.entity = entity;
  ev.kind = kind;
  ev.payload.job = {job, user, cluster, static_cast<std::int32_t>(procs)};
  return ev;
}

[[nodiscard]] inline TraceEvent market_event(double time, EntityId entity,
                                             TraceEventKind kind, RequestId request,
                                             BidId bid, double price) {
  TraceEvent ev;
  ev.time = time;
  ev.entity = entity;
  ev.kind = kind;
  ev.payload.market = {request, bid, price};
  return ev;
}

[[nodiscard]] inline TraceEvent net_event(double time, EntityId entity,
                                          EntityId peer, std::uint8_t message_kind,
                                          DropReason reason) {
  TraceEvent ev;
  ev.time = time;
  ev.entity = entity;
  ev.kind = TraceEventKind::kNetDrop;
  ev.payload.net = {peer, message_kind, reason};
  return ev;
}

[[nodiscard]] inline TraceEvent auth_event(double time, EntityId entity,
                                           TraceEventKind kind, UserId user,
                                           RequestId request) {
  TraceEvent ev;
  ev.time = time;
  ev.entity = entity;
  ev.kind = kind;
  ev.payload.auth = {user, request};
  return ev;
}

// ------------------------------------------------------------------- buffer

/// Bounded trace store: a power-of-two ring. When full, each new record
/// overwrites the oldest one — O(1), unlike the old recorder's O(n)
/// vector::erase compaction — mirroring AppSpector's display buffer that
/// keeps recent output available to late-joining watchers.
class TraceBuffer {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 1).
  explicit TraceBuffer(std::size_t capacity = 1 << 16)
      : ring_(round_up_pow2(capacity)),
        stamps_(ring_.size()),
        mask_(ring_.size() - 1) {}

  /// Record one event. Never allocates: the ring is preallocated and the
  /// event is trivially copyable. Stamps live in a parallel ring so the
  /// event struct itself stays one cache line.
  void record(const TraceEvent& ev) noexcept {
    const std::size_t slot = static_cast<std::size_t>(head_) & mask_;
    ring_[slot] = ev;
    if (stamp_fn_ != nullptr) stamps_[slot] = stamp_fn_(stamp_src_);
    ++head_;
  }

  /// Source of canonical-order stamps (the owning engine, behind a plain
  /// function pointer so this header stays independent of the sim layer).
  using StampFn = TraceStamp (*)(const void*);
  void set_stamp_source(StampFn fn, const void* src) noexcept {
    stamp_fn_ = fn;
    stamp_src_ = src;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return head_ < ring_.size() ? static_cast<std::size_t>(head_) : ring_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events overwritten because the ring was full, oldest-first semantics.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return head_ < ring_.size() ? 0 : head_ - ring_.size();
  }
  /// Every record() ever, including overwritten ones.
  [[nodiscard]] std::uint64_t total_recorded() const noexcept { return head_; }

  /// i-th surviving event, oldest first (i in [0, size())).
  [[nodiscard]] const TraceEvent& at(std::size_t i) const noexcept {
    return ring_[static_cast<std::size_t>(head_ - size() + i) & mask_];
  }

  /// Canonical-order stamp of the i-th surviving event (same indexing as
  /// at(); zeroed when no stamp source was wired).
  [[nodiscard]] const TraceStamp& stamp_at(std::size_t i) const noexcept {
    return stamps_[static_cast<std::size_t>(head_ - size() + i) & mask_];
  }

  /// Visit surviving events oldest-first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) fn(at(i));
  }

  /// All surviving events of one kind, oldest first.
  [[nodiscard]] std::vector<TraceEvent> filter(TraceEventKind kind) const {
    std::vector<TraceEvent> out;
    for_each([&](const TraceEvent& ev) {
      if (ev.kind == kind) out.push_back(ev);
    });
    return out;
  }

  /// All surviving job-lifecycle events for one job on one cluster.
  [[nodiscard]] std::vector<TraceEvent> for_job(ClusterId cluster, JobId job) const {
    std::vector<TraceEvent> out;
    for_each([&](const TraceEvent& ev) {
      if (payload_of(ev.kind) == TracePayload::kJob &&
          ev.payload.job.cluster == cluster && ev.payload.job.job == job) {
        out.push_back(ev);
      }
    });
    return out;
  }

  void clear() noexcept { head_ = 0; }

 private:
  [[nodiscard]] static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<TraceEvent> ring_;  // preallocated, size is a power of two
  std::vector<TraceStamp> stamps_;  // parallel to ring_, same indexing
  std::size_t mask_;
  std::uint64_t head_ = 0;  // total records ever; write index is head_ & mask_
  StampFn stamp_fn_ = nullptr;
  const void* stamp_src_ = nullptr;
};

/// A flattened, read-only view with the same read API as TraceBuffer, used
/// by exporters that consume the merged per-shard rings of a sharded run.
///
/// merged() k-way-merges the surviving events of all shards' rings by the
/// canonical order (time, stamp, ring order) — identical at every shard
/// count, including one — and keeps the newest `capacity`: exactly the
/// window a single ring of the same capacity would have retained, because
/// any event inside the global last-capacity window has at most capacity
/// same-shard events after it and therefore also survived its shard's ring.
class TraceView {
 public:
  TraceView() = default;

  [[nodiscard]] static TraceView merged(const std::vector<const TraceBuffer*>& shards) {
    TraceView out;
    struct Ref {
      double time;
      TraceStamp stamp;
      std::size_t shard;
      std::size_t idx;
    };
    std::vector<Ref> order;
    for (std::size_t s = 0; s < shards.size(); ++s) {
      if (shards[s] == nullptr) continue;
      out.total_ += shards[s]->total_recorded();
      out.capacity_ = std::max(out.capacity_, shards[s]->capacity());
      const std::size_t n = shards[s]->size();
      for (std::size_t i = 0; i < n; ++i) {
        order.push_back(Ref{shards[s]->at(i).time, shards[s]->stamp_at(i), s, i});
      }
    }
    // Records of one executing event share a stamp and live in one ring, so
    // ring order finishes the job; the (shard, idx) fallback only orders
    // unstamped legacy records.
    std::sort(order.begin(), order.end(), [](const Ref& a, const Ref& b) {
      if (a.time != b.time) return a.time < b.time;
      if (a.stamp.rank != b.stamp.rank) return a.stamp.rank < b.stamp.rank;
      if (a.stamp.creator != b.stamp.creator) return a.stamp.creator < b.stamp.creator;
      if (a.stamp.cseq != b.stamp.cseq) return a.stamp.cseq < b.stamp.cseq;
      if (a.shard != b.shard) return a.shard < b.shard;
      return a.idx < b.idx;
    });
    const std::size_t keep = std::min(order.size(), out.capacity_);
    out.events_.reserve(keep);
    for (std::size_t i = order.size() - keep; i < order.size(); ++i) {
      out.events_.push_back(shards[order[i].shard]->at(order[i].idx));
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t total_recorded() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return total_ - events_.size();
  }
  [[nodiscard]] const TraceEvent& at(std::size_t i) const noexcept {
    return events_[i];
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const TraceEvent& ev : events_) fn(ev);
  }

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t total_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace faucets::obs
