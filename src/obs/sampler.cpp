#include "src/obs/sampler.hpp"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.hpp"

namespace faucets::obs {

namespace {
/// Buffers compact by pair-merge, so capacities must be even and hold at
/// least one merged pair.
std::size_t normalize_capacity(std::size_t capacity) {
  if (capacity < 2) capacity = 2;
  return capacity + (capacity & 1);
}
}  // namespace

Series::Series(std::string name, std::string unit, Probe probe,
               std::size_t capacity)
    : name_(std::move(name)),
      unit_(std::move(unit)),
      probe_(std::move(probe)),
      capacity_(normalize_capacity(capacity)) {
  points_.reserve(capacity_);
}

double Series::value_min() const noexcept {
  double lo = 0.0;
  bool first = true;
  for (const SamplePoint& p : points_) {
    lo = first ? p.min : std::min(lo, p.min);
    first = false;
  }
  return lo;
}

double Series::value_max() const noexcept {
  double hi = 0.0;
  bool first = true;
  for (const SamplePoint& p : points_) {
    hi = first ? p.max : std::max(hi, p.max);
    first = false;
  }
  return hi;
}

void Series::observe(double t, double v) noexcept {
  ++observations_;
  if (acc_.count == 0) {
    acc_.t_begin = t;
    acc_.min = v;
    acc_.max = v;
    acc_.sum = 0.0;
  }
  acc_.t_end = t;
  acc_.min = std::min(acc_.min, v);
  acc_.max = std::max(acc_.max, v);
  acc_.sum += v;
  ++acc_.count;
  if (acc_.count >= stride_) flush_accumulator();
}

void Series::flush_accumulator() noexcept {
  if (acc_.count == 0) return;
  if (points_.size() == capacity_) compact();
  // reserve() ran at construction, so this push_back never reallocates.
  points_.push_back(acc_);
  acc_ = SamplePoint{};
}

void Series::compact() noexcept {
  // Merge adjacent pairs in place: resolution halves, coverage is kept.
  const std::size_t half = points_.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const SamplePoint& a = points_[2 * i];
    const SamplePoint& b = points_[2 * i + 1];
    SamplePoint merged;
    merged.t_begin = a.t_begin;
    merged.t_end = b.t_end;
    merged.min = std::min(a.min, b.min);
    merged.max = std::max(a.max, b.max);
    merged.sum = a.sum + b.sum;
    merged.count = a.count + b.count;
    points_[i] = merged;
  }
  points_.resize(half);
  stride_ *= 2;
}

std::size_t Sampler::add_series(std::string name, Series::Probe probe,
                                std::string unit, std::size_t capacity) {
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i].name() == name) return i;
  }
  if (capacity == 0) capacity = default_capacity_;
  series_.emplace_back(std::move(name), std::move(unit), std::move(probe),
                       capacity);
  return series_.size() - 1;
}

std::size_t Sampler::add_gauge_series(std::string name, const Gauge& gauge,
                                      std::string unit, std::size_t capacity) {
  return add_series(std::move(name), [&gauge] { return gauge.value(); },
                    std::move(unit), capacity);
}

std::size_t Sampler::add_counter_series(std::string name, const Counter& counter,
                                        std::string unit, std::size_t capacity) {
  return add_series(std::move(name),
                    [&counter] { return static_cast<double>(counter.value()); },
                    std::move(unit), capacity);
}

void Sampler::sample(double now) noexcept {
  ++samples_;
  for (Series& s : series_) s.observe(now, s.probe_());
}

const Series* Sampler::find(std::string_view name) const {
  for (const Series& s : series_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

}  // namespace faucets::obs
