#include "src/obs/metrics.hpp"

#include <stdexcept>

namespace faucets::obs {

namespace {
constexpr const char* type_name(MetricsRegistry::Type type) {
  switch (type) {
    case MetricsRegistry::Type::kCounter: return "counter";
    case MetricsRegistry::Type::kGauge: return "gauge";
    case MetricsRegistry::Type::kHistogram: return "histogram";
  }
  return "?";
}
}  // namespace

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count) {
  std::vector<double> out;
  out.reserve(count);
  double edge = start;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(edge);
    edge *= factor;
  }
  return out;
}

std::vector<double> linear_buckets(double start, double width, std::size_t count) {
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(start + width * static_cast<double>(i));
  }
  return out;
}

MetricsRegistry::Owned* MetricsRegistry::find_entry(const std::string& name,
                                                    Type type) {
  const auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  Owned& e = entries_[it->second];
  // A name identifies exactly one instrument. Before this check, registering
  // the same name under a different type silently created a second entry the
  // index could not reach — both aliased into one exported name.
  if (e.type != type) {
    throw std::invalid_argument("metric '" + name + "' is already a " +
                                type_name(e.type) + ", cannot re-register as " +
                                type_name(type));
  }
  return &e;
}

const MetricsRegistry::Owned* MetricsRegistry::find_entry(
    const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

Counter& MetricsRegistry::counter(const std::string& name, std::string help) {
  if (Owned* e = find_entry(name, Type::kCounter)) return *e->counter;
  Owned e;
  e.name = name;
  e.help = std::move(help);
  e.type = Type::kCounter;
  e.first_seen = next_ticket();
  e.counter = std::make_unique<Counter>();
  Counter& ref = *e.counter;
  index_.emplace(name, entries_.size());
  entries_.push_back(std::move(e));
  return ref;
}

Gauge& MetricsRegistry::gauge(const std::string& name, std::string help) {
  if (Owned* e = find_entry(name, Type::kGauge)) return *e->gauge;
  Owned e;
  e.name = name;
  e.help = std::move(help);
  e.type = Type::kGauge;
  e.first_seen = next_ticket();
  e.gauge = std::make_unique<Gauge>();
  Gauge& ref = *e.gauge;
  index_.emplace(name, entries_.size());
  entries_.push_back(std::move(e));
  return ref;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      std::string help) {
  if (Owned* e = find_entry(name, Type::kHistogram)) return *e->histogram;
  Owned e;
  e.name = name;
  e.help = std::move(help);
  e.type = Type::kHistogram;
  e.first_seen = next_ticket();
  e.histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram& ref = *e.histogram;
  index_.emplace(name, entries_.size());
  entries_.push_back(std::move(e));
  return ref;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const Owned* e = find_entry(name);
  return (e != nullptr && e->type == Type::kCounter) ? e->counter.get() : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const Owned* e = find_entry(name);
  return (e != nullptr && e->type == Type::kGauge) ? e->gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const Owned* e = find_entry(name);
  return (e != nullptr && e->type == Type::kHistogram) ? e->histogram.get()
                                                       : nullptr;
}

MetricsRegistry MetricsRegistry::merged(
    const std::vector<const MetricsRegistry*>& shards) {
  // Gather every entry of every shard, keyed by name; a name's position in
  // the merged registry is its smallest first_seen ticket, which matches the
  // single-engine registration order (see set_sequencer).
  struct Slot {
    std::uint64_t first_seen;
    const Owned* proto;
    std::vector<const Owned*> parts;
  };
  std::unordered_map<std::string, std::size_t> by_name;
  std::vector<Slot> slots;
  for (const MetricsRegistry* shard : shards) {
    if (shard == nullptr) continue;
    for (const Owned& e : shard->entries_) {
      const auto it = by_name.find(e.name);
      if (it == by_name.end()) {
        by_name.emplace(e.name, slots.size());
        slots.push_back(Slot{e.first_seen, &e, {&e}});
      } else {
        Slot& s = slots[it->second];
        s.first_seen = std::min(s.first_seen, e.first_seen);
        s.parts.push_back(&e);
      }
    }
  }
  std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
    if (a.first_seen != b.first_seen) return a.first_seen < b.first_seen;
    return a.proto->name < b.proto->name;  // tie: only possible unsequenced
  });
  MetricsRegistry out;
  for (const Slot& s : slots) {
    switch (s.proto->type) {
      case Type::kCounter: {
        Counter& c = out.counter(s.proto->name, s.proto->help);
        for (const Owned* p : s.parts) c.inc(p->counter->value());
        break;
      }
      case Type::kGauge: {
        // Carry each part's compensation term through the fold (not just its
        // rounded value()) so the merged sum matches the single-engine
        // compensated sum bit-for-bit regardless of how the series was split
        // across shards.
        Gauge& g = out.gauge(s.proto->name, s.proto->help);
        for (const Owned* p : s.parts) g.merge_from(*p->gauge);
        break;
      }
      case Type::kHistogram: {
        Histogram& h = out.histogram(s.proto->name, s.proto->histogram->bounds(),
                                     s.proto->help);
        for (const Owned* p : s.parts) h.merge_from(*p->histogram);
        break;
      }
    }
  }
  return out;
}

}  // namespace faucets::obs
