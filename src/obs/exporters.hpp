// Serializers for the observability bundle.
//
//  - write_trace_jsonl: one JSON object per line per trace event.
//  - write_prometheus: Prometheus text exposition of the metrics snapshot.
//  - write_chrome_trace: Chrome trace-event JSON (open in Perfetto or
//    chrome://tracing). One process track per cluster with a thread per job,
//    plus a "market" process whose threads are client submissions.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/util/ids.hpp"

namespace faucets::obs {

class TraceBuffer;
class MetricsRegistry;
class SpanTracker;

void write_trace_jsonl(std::ostream& os, const TraceBuffer& trace);

void write_prometheus(std::ostream& os, const MetricsRegistry& metrics);

struct ChromeTraceOptions {
  /// Display names for cluster process tracks, parallel-indexed by
  /// ClusterId value; clusters beyond the list fall back to "cluster-N".
  std::vector<std::string> cluster_names;
  /// Simulated seconds are scaled by this factor into trace microseconds.
  double us_per_sim_second = 1e6;
};

void write_chrome_trace(std::ostream& os, const SpanTracker& spans,
                        const TraceBuffer& trace,
                        const ChromeTraceOptions& options = {});

}  // namespace faucets::obs
