// Serializers for the observability bundle.
//
//  - write_trace_jsonl: one JSON object per line per trace event.
//  - write_prometheus: Prometheus text exposition of the metrics snapshot.
//  - write_chrome_trace: Chrome trace-event JSON (open in Perfetto or
//    chrome://tracing). One process track per cluster with a thread per job,
//    plus a "market" process whose threads are client submissions.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/util/ids.hpp"

namespace faucets::obs {

class TraceBuffer;
class TraceView;
class MetricsRegistry;
class SpanTracker;

/// One JSON object per line per trace event. When the bounded ring dropped
/// events, the first line is a meta object ({"meta":"trace","dropped":N,...})
/// so consumers know the window is truncated instead of silently partial.
void write_trace_jsonl(std::ostream& os, const TraceBuffer& trace);
/// Same format over a merged sharded view; a single-shard view serializes
/// byte-identically to the ring it was built from.
void write_trace_jsonl(std::ostream& os, const TraceView& trace);

/// Prometheus text exposition of the metrics snapshot. When `trace` is given
/// and its ring dropped events, a synthetic faucets_trace_dropped_total
/// counter is appended so scrapes surface the data loss.
void write_prometheus(std::ostream& os, const MetricsRegistry& metrics,
                      const TraceBuffer* trace = nullptr);
void write_prometheus(std::ostream& os, const MetricsRegistry& metrics,
                      const TraceView* trace);

struct ChromeTraceOptions {
  /// Display names for cluster process tracks, parallel-indexed by
  /// ClusterId value; clusters beyond the list fall back to "cluster-N".
  std::vector<std::string> cluster_names;
  /// Simulated seconds are scaled by this factor into trace microseconds.
  double us_per_sim_second = 1e6;
};

void write_chrome_trace(std::ostream& os, const SpanTracker& spans,
                        const TraceBuffer& trace,
                        const ChromeTraceOptions& options = {});
void write_chrome_trace(std::ostream& os, const SpanTracker& spans,
                        const TraceView& trace,
                        const ChromeTraceOptions& options = {});

}  // namespace faucets::obs
