// MetricsRegistry: counters, gauges, and fixed-bucket histograms that every
// layer of the grid registers into through SimContext.
//
// Entities look metrics up by name once (construction time) and keep the
// returned reference; observation is then a branch-free increment. Names
// follow the Prometheus convention and may carry a label set in braces —
// `faucets_job_wait_seconds{cluster="turing"}` — which the text exporter
// emits verbatim. Re-registering a name returns the existing instrument, so
// several entities can share one grid-wide counter.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace faucets::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Gauges accumulate with Neumaier compensated summation: (value_, comp_)
/// behaves as a double-double accumulator, so sums of similarly-scaled series
/// (e.g. per-job revenue) come out independent of partial-sum grouping. The
/// sharded merge carries the compensation term through merge_from(), which is
/// what makes merged Prometheus text byte-identical across shard counts
/// (DESIGN.md §11.6).
class Gauge {
 public:
  void set(double v) noexcept {
    value_ = v;
    comp_ = 0.0;
  }
  void add(double v) noexcept {
    const double t = value_ + v;
    if (std::abs(value_) >= std::abs(v)) {
      comp_ += (value_ - t) + v;
    } else {
      comp_ += (v - t) + value_;
    }
    value_ = t;
  }
  [[nodiscard]] double value() const noexcept { return value_ + comp_; }
  /// Fold another gauge in, carrying its compensation term (sharded merge).
  void merge_from(const Gauge& other) noexcept {
    add(other.value_);
    add(other.comp_);
  }

 private:
  double value_ = 0.0;
  double comp_ = 0.0;
};

/// Fixed-bucket histogram. `bounds` are ascending inclusive upper edges; one
/// implicit overflow bucket catches everything above the last bound. The
/// quantile estimate interpolates linearly inside the containing bucket and
/// is exact at the bucket edges, so its error is bounded by bucket width.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {}

  void observe(double v) noexcept {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts; index bounds().size() is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

  /// Lower/upper value edges of bucket `i`, clamped to observed min/max so
  /// quantile estimates never leave the observed range.
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept {
    return i == 0 ? min() : std::max(min(), bounds_[i - 1]);
  }
  [[nodiscard]] double bucket_hi(std::size_t i) const noexcept {
    return i < bounds_.size() ? std::min(max(), bounds_[i]) : max();
  }

  /// Estimate the q-quantile (q in [0,1]) of everything observed. Uses the
  /// nearest-rank bucket and interpolates linearly within it; the overflow
  /// bucket reports between its lower edge and the observed maximum.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Nearest-rank: the k-th smallest sample with k in [1, count].
    const auto rank = static_cast<std::uint64_t>(
        std::max<double>(1.0, std::ceil(q * static_cast<double>(count_))));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] == 0) continue;
      if (cum + buckets_[i] >= rank) {
        const double lo = bucket_lo(i);
        const double hi = std::max(bucket_hi(i), lo);
        const double within = static_cast<double>(rank - cum) /
                              static_cast<double>(buckets_[i]);
        return lo + (hi - lo) * within;
      }
      cum += buckets_[i];
    }
    return max();
  }

  /// Fold pre-aggregated observations in one call (the host-time profiler's
  /// POD tick histograms publish this way at finalize): `counts[i]` samples
  /// land in bucket i (anything past the end goes to the overflow bucket),
  /// plus the summary moments of those samples.
  void fold_prebinned(const std::uint64_t* counts, std::size_t n, double sum,
                      double mn, double mx) noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      buckets_[std::min(i, buckets_.size() - 1)] += counts[i];
      total += counts[i];
    }
    count_ += total;
    sum_ += sum;
    if (total > 0) {
      min_ = std::min(min_, mn);
      max_ = std::max(max_, mx);
    }
  }

  /// Fold another histogram with identical bounds into this one (sharded
  /// merge): bucket counts, count, and extrema combine exactly; sums add.
  void merge_from(const Histogram& other) noexcept {
    for (std::size_t i = 0; i < buckets_.size() && i < other.buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// `count` ascending edges starting at `start`, each `factor` times the last.
[[nodiscard]] std::vector<double> exponential_buckets(double start, double factor,
                                                      std::size_t count);
/// `count` ascending edges `start, start+width, ...`.
[[nodiscard]] std::vector<double> linear_buckets(double start, double width,
                                                 std::size_t count);

/// Insertion-ordered registry. Instruments live behind unique_ptr so the
/// references handed out stay valid as the registry grows.
class MetricsRegistry {
 public:
  enum class Type { kCounter, kGauge, kHistogram };

  Counter& counter(const std::string& name, std::string help = "");
  Gauge& gauge(const std::string& name, std::string help = "");
  /// `bounds` are used only on first registration of `name`.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       std::string help = "");

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// The value of a counter, 0 when it was never registered.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const {
    const Counter* c = find_counter(name);
    return c == nullptr ? 0 : c->value();
  }

  struct Entry {
    std::string name;  // full name including any {label="..."} suffix
    std::string help;
    Type type;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  /// Visit every instrument in registration order (exporters rely on the
  /// deterministic order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& e : entries_) {
      Entry view{e.name, e.help, e.type, e.counter.get(), e.gauge.get(),
                 e.histogram.get()};
      fn(view);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Install a shared first-registration sequencer (sharded runs). Every
  /// first registration of a name in *this* registry draws one globally
  /// unique, monotonically increasing ticket from it. Because a sharded grid
  /// constructs entities in the same global order as a single-engine run,
  /// the ticket of a name's first registration — on whichever shard got
  /// there first — identifies the same construction step at every shard
  /// count, which is what makes merged() order-stable.
  void set_sequencer(std::atomic<std::uint64_t>* seq) noexcept { sequencer_ = seq; }

  /// Merge per-shard registries into one, in first-ticket order (identical
  /// to single-engine registration order). Counters and histogram buckets /
  /// counts sum exactly; gauges sum (every grid gauge is either owner-unique
  /// or additive); histogram min/max merge exactly; histogram sums add in
  /// shard order. Requires identical bounds for same-named histograms.
  [[nodiscard]] static MetricsRegistry merged(
      const std::vector<const MetricsRegistry*>& shards);

 private:
  struct Owned {
    std::string name;
    std::string help;
    Type type;
    std::uint64_t first_seen = 0;  // sequencer ticket (sharded runs only)
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Owned* find_entry(const std::string& name, Type type);
  [[nodiscard]] const Owned* find_entry(const std::string& name) const;
  [[nodiscard]] std::uint64_t next_ticket() noexcept {
    return sequencer_ != nullptr
               ? sequencer_->fetch_add(1, std::memory_order_relaxed)
               : static_cast<std::uint64_t>(entries_.size());
  }

  std::vector<Owned> entries_;
  std::unordered_map<std::string, std::size_t> index_;
  std::atomic<std::uint64_t>* sequencer_ = nullptr;
};

}  // namespace faucets::obs
