// Host-time executor profiler (DESIGN.md §12).
//
// Opt-in observability for the simulator's *own* wall clock — the same
// discipline the grid applies to simulated time (telemetry, spans, traces),
// pointed at the machine underneath. A Profiler owns one ProfilerLane per
// shard: the engine wraps each event dispatch in one timestamp pair, the
// network tags the in-flight event with (MessageKind, entity class), and the
// sharded run loop accounts each lane's wall clock into exclusive phases
// (execute / mailbox-drain / merge / barrier-wait / idle) plus per-window
// stats (t_min advance, events per window, lookahead efficiency) and
// thread-pool worker busy/steal time.
//
// Everything on the hot path writes into fixed preallocated POD arrays —
// zero allocations after construction (tests/obs/profiler_alloc_test.cpp
// pins this) — and nothing here touches sim-side state (registries, traces,
// spans, RNG, schedules), so report JSON and trace JSONL are byte-identical
// with profiling on or off at every shard count.
//
// Timer reads go through HostClock, a calibrated TSC (x86-64) or
// steady_clock wrapper. Compile with -DFAUCETS_PROFILE=0 to compile every
// hook out entirely; at the default (=1) an unprofiled run pays one null
// check per event.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <bit>
#include <iosfwd>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.hpp"

#ifndef FAUCETS_PROFILE
#define FAUCETS_PROFILE 1
#endif

namespace faucets::obs {

/// Calibrated host clock: raw TSC on x86-64 (one ~20-cycle read per call),
/// steady_clock everywhere else. ns_per_tick() calibrates once per process
/// against steady_clock (~1 ms busy spin) so tick deltas convert to seconds.
struct HostClock {
  [[nodiscard]] static std::uint64_t ticks() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    return __builtin_ia32_rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
  }
  [[nodiscard]] static double ns_per_tick();
  [[nodiscard]] static const char* source() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    return "tsc";
#else
    return "steady_clock";
#endif
  }
};

/// Fixed-size log2 latency accumulator in clock ticks: bucket i counts
/// samples in [2^i, 2^(i+1)) ticks. POD, so recording is a handful of
/// integer ops and never allocates; conversion to seconds happens once at
/// export via HostClock::ns_per_tick().
struct ProfStats {
  static constexpr std::size_t kBuckets = 32;

  std::uint64_t count = 0;
  std::uint64_t total = 0;  // ticks
  std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  void record(std::uint64_t t) noexcept {
    ++count;
    total += t;
    if (t < min) min = t;
    if (t > max) max = t;
    const std::size_t w = static_cast<std::size_t>(std::bit_width(t | 1)) - 1;
    ++buckets[w < kBuckets ? w : kBuckets - 1];
  }

  void merge_from(const ProfStats& other) noexcept {
    count += other.count;
    total += other.total;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
    for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  }

  [[nodiscard]] std::uint64_t min_or_zero() const noexcept {
    return count == 0 ? 0 : min;
  }
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(total) / static_cast<double>(count);
  }
  /// q-quantile estimate in ticks: nearest-rank bucket, linear interpolation
  /// within the bucket's [2^i, 2^(i+1)) span, clamped to observed min/max.
  [[nodiscard]] double quantile_ticks(double q) const noexcept;
};

/// Min/mean/max over a stream of doubles (sim-time window stats).
struct ProfDoubleStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void add(double v) noexcept {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  [[nodiscard]] double min_or_zero() const noexcept { return count == 0 ? 0.0 : min; }
  [[nodiscard]] double max_or_zero() const noexcept { return count == 0 ? 0.0 : max; }
};

/// Coarse entity category for self-time attribution. Entities carry the raw
/// byte (sim::Entity::prof_class()); GridSystem assigns one per entity it
/// stands up, everything else reports as kOther.
enum class ProfClass : std::uint8_t {
  kOther = 0,
  kCentral,
  kAppSpector,
  kBroker,
  kDaemon,
  kClient,
};
inline constexpr std::size_t kProfClassCount = 6;
[[nodiscard]] const char* to_string(ProfClass c) noexcept;

/// Exclusive wall-clock phases of one shard lane. Every tick of a lane's
/// run-time lands in exactly one phase (idle is the explicit remainder), so
/// the five sum to the lane's wall clock.
enum class ProfPhase : std::uint8_t {
  kExecute = 0,      // event handlers running inside a lookahead window
  kMailboxDrain,     // coordinator draining this shard's cross-shard mailbox
  kMerge,            // shared barrier work (history replay, t_min, drains of peers)
  kBarrierWait,      // dispatch latency + waiting for slower shards
  kIdle,             // outside any window (before first / after last / gaps)
};
inline constexpr std::size_t kProfPhaseCount = 5;
[[nodiscard]] const char* to_string(ProfPhase p) noexcept;

/// Per-shard hot-path recorder. The engine drives begin_event/end_event
/// around every dispatched handler; the network tags the event in between.
/// All fields are plain PODs sized at construction — record paths never
/// allocate. One lane is only ever written by one thread at a time (the
/// worker running its window, or the coordinator between windows).
class ProfilerLane {
 public:
  /// Kind slots: 0 = timer/no-message events, 1 + MessageKind otherwise.
  static constexpr std::size_t kKindSlots = 40;

  void begin_event() noexcept {
    kind_ = 0;
    cls_ = 0;
    start_ = HostClock::ticks();
  }
  void set_event_tag(std::size_t kind_slot, std::size_t cls) noexcept {
    kind_ = kind_slot < kKindSlots ? kind_slot : kKindSlots - 1;
    cls_ = cls < kProfClassCount ? cls : 0;
  }
  void end_event() noexcept {
    const std::uint64_t d = HostClock::ticks() - start_;
    by_kind_[kind_].record(d);
    by_class_[cls_].record(d);
    ++events_;
  }

  /// Worker-side window task bracketing (sharded runs): execute phase is the
  /// sum of task durations, and the coordinator reads the start/end marks
  /// after wait_idle() to compute this lane's barrier-wait share.
  void begin_window_task() noexcept {
    task_start_ = HostClock::ticks();
    events_at_task_start_ = events_;
  }
  void end_window_task() noexcept {
    task_end_ = HostClock::ticks();
    execute_ += task_end_ - task_start_;
    ++windows_;
  }

  /// Single-engine runs: the whole run loop is one execute span.
  void add_execute(std::uint64_t ticks) noexcept { execute_ += ticks; }

  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  [[nodiscard]] const ProfStats& by_kind(std::size_t slot) const noexcept {
    return by_kind_[slot];
  }
  [[nodiscard]] const ProfStats& by_class(std::size_t cls) const noexcept {
    return by_class_[cls];
  }

 private:
  friend class Profiler;

  std::array<ProfStats, kKindSlots> by_kind_{};
  std::array<ProfStats, kProfClassCount> by_class_{};
  std::uint64_t events_ = 0;
  std::uint64_t start_ = 0;
  std::size_t kind_ = 0;
  std::size_t cls_ = 0;
  // Window task marks (worker-written, coordinator-read after wait_idle).
  std::uint64_t task_start_ = 0;
  std::uint64_t task_end_ = 0;
  std::uint64_t events_at_task_start_ = 0;
  std::uint64_t windows_ = 0;
  // Exclusive phase totals, ticks (idle is derived at export).
  std::uint64_t execute_ = 0;
  std::uint64_t drain_ = 0;
  std::uint64_t merge_ = 0;
  std::uint64_t barrier_wait_ = 0;
};

struct ProfilerConfig {
  std::size_t lanes = 1;
  /// Conservative lookahead of the sharded run, sim-seconds (0 = unsharded);
  /// the denominator of the lookahead-efficiency figure.
  double lookahead = 0.0;
  /// Host-timeline slice budget (shard window + barrier slices). Keep-first:
  /// once full, further slices are counted in timeline_dropped(). 0 is valid
  /// (every slice drops) — GridSystem uses it for single-engine runs, whose
  /// one execute span never pushes a slice.
  std::size_t timeline_capacity = 1 << 15;
};

/// The profiler: per-lane recorders plus coordinator-side phase/window and
/// thread-pool accounting, finalized into its OWN MetricsRegistry
/// (faucets_prof_* — never the simulation's registries) and exported as
/// profile.json, Prometheus text, and a host-timeline Chrome trace.
class Profiler {
 public:
  explicit Profiler(ProfilerConfig config);

  [[nodiscard]] ProfilerLane& lane(std::size_t i) noexcept { return lanes_[i]; }
  [[nodiscard]] const ProfilerLane& lane(std::size_t i) const noexcept {
    return lanes_[i];
  }
  [[nodiscard]] std::size_t lane_count() const noexcept { return lanes_.size(); }

  /// Display name for a kind slot ("RFB", "BID", ...; slot 0 = "timer").
  /// Called during setup, before the hot path starts.
  void set_kind_name(std::size_t slot, std::string name);

  // --- run bracketing (coordinator thread) --------------------------------
  void begin_run() noexcept;
  void end_run() noexcept;

  // --- sharded coordinator hooks (between windows, workers idle) ----------
  void barrier_begin() noexcept;
  /// Coordinator time spent draining lane `i`'s mailbox this barrier.
  void add_drain(std::size_t i, std::uint64_t ticks) noexcept;
  /// Barrier done (drains + history replay + t_min): the interval minus each
  /// lane's own drain is that lane's merge share.
  void barrier_end() noexcept;
  /// A window is about to dispatch at global lower bound `tmin`.
  void window_launch(double tmin) noexcept;
  /// All lanes finished the window (after wait_idle): compute per-lane
  /// barrier-wait, per-window event counts, and timeline slices.
  void window_complete() noexcept;

  // --- thread-pool worker hook (any worker thread, own slot only) ---------
  void record_pool_task(std::size_t worker, std::uint64_t ticks,
                        bool stolen) noexcept {
    if (worker >= pool_.size()) return;
    PoolWorker& w = pool_[worker];
    w.busy += ticks;
    ++w.tasks;
    if (stolen) ++w.steals;
  }

  // --- results ------------------------------------------------------------

  /// Exclusive per-lane phase decomposition in seconds; phases sum to wall.
  struct LanePhases {
    std::array<double, kProfPhaseCount> seconds{};
    double wall_seconds = 0.0;
    std::uint64_t events = 0;
    std::uint64_t windows = 0;
    [[nodiscard]] double of(ProfPhase p) const noexcept {
      return seconds[static_cast<std::size_t>(p)];
    }
  };
  [[nodiscard]] LanePhases lane_phases(std::size_t i) const noexcept;

  [[nodiscard]] double wall_seconds() const noexcept;
  [[nodiscard]] std::uint64_t events_total() const noexcept;
  [[nodiscard]] std::uint64_t windows() const noexcept { return window_count_; }
  [[nodiscard]] const ProfDoubleStats& window_advance() const noexcept {
    return advance_;
  }
  [[nodiscard]] const ProfStats& window_events() const noexcept {
    return window_events_;
  }
  /// Mean per-window t_min advance over the lookahead span (sharded runs);
  /// < 1 means several windows per lookahead quantum, > 1 means windows are
  /// jumping over idle sim-time.
  [[nodiscard]] double lookahead_efficiency() const noexcept;
  [[nodiscard]] std::uint64_t timeline_dropped() const noexcept {
    return timeline_dropped_;
  }

  /// Publish everything into the profiler's own registry (idempotent: each
  /// call rebuilds it from the raw accumulators). Deliberately not part of
  /// the run path — building ~50 named instruments costs more than the whole
  /// hot path on a short run — so GridSystem calls it at artifact-export
  /// time; metrics() is empty until the first finalize().
  void finalize();
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// profile.json summary (schema 1).
  void write_json(std::ostream& os) const;
  /// Prometheus text exposition of the faucets_prof_* registry.
  void write_prometheus(std::ostream& os) const;
  /// Host-timeline Chrome trace: shard lanes on one process, barrier markers
  /// on a second, in a pid range (9000+) disjoint from the sim-time trace so
  /// the two files merge cleanly in Perfetto.
  void write_chrome(std::ostream& os) const;

  /// Append per-run prof_* columns for faucets_sweep rows.
  void append_sweep_metrics(
      std::vector<std::pair<std::string, double>>& metrics) const;

 private:
  struct PoolWorker {
    std::uint64_t busy = 0;  // ticks
    std::uint64_t tasks = 0;
    std::uint64_t steals = 0;
  };
  struct TimelineSlice {
    std::uint64_t start = 0;  // ticks
    std::uint64_t end = 0;
    std::uint32_t lane = 0;
    std::uint32_t kind = 0;  // 0 = window execute, 1 = barrier
    std::uint64_t events = 0;
  };

  void push_slice(std::uint64_t start, std::uint64_t end, std::uint32_t lane,
                  std::uint32_t kind, std::uint64_t events) noexcept {
    if (timeline_used_ >= timeline_.size()) {
      ++timeline_dropped_;
      return;
    }
    timeline_[timeline_used_++] = TimelineSlice{start, end, lane, kind, events};
  }

  ProfilerConfig config_;
  std::vector<ProfilerLane> lanes_;
  std::vector<PoolWorker> pool_;
  std::vector<std::string> kind_names_;
  std::vector<TimelineSlice> timeline_;  // preallocated, keep-first
  std::size_t timeline_used_ = 0;
  std::uint64_t timeline_dropped_ = 0;
  std::vector<std::uint64_t> drain_w_;  // per-lane drain ticks this barrier

  std::uint64_t run_start_ = 0;
  std::uint64_t first_tick_ = 0;  // timeline epoch (first begin_run)
  bool started_ = false;
  std::uint64_t wall_ticks_ = 0;

  std::uint64_t barrier_t0_ = 0;
  std::uint64_t barrier_t2_ = 0;  // last barrier_end == dispatch point
  std::uint64_t window_count_ = 0;
  bool has_last_tmin_ = false;
  double last_tmin_ = 0.0;
  ProfDoubleStats advance_;
  ProfStats window_events_;

  MetricsRegistry metrics_;
};

}  // namespace faucets::obs
