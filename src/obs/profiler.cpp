#include "src/obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "src/obs/exporters.hpp"

namespace faucets::obs {

namespace {

/// Shortest round-trippable decimal (%.17g), matching the report/exporter
/// convention so profiler artifacts are as deterministic as the clock allows.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) noexcept {
  return a > b ? a - b : 0;
}

/// Host trace pids: disjoint from the sim-time trace (market = 1, clusters =
/// 100+) so concatenated traces render side by side in Perfetto.
constexpr int kHostShardPid = 9000;
constexpr int kHostCoordinatorPid = 9001;

}  // namespace

double HostClock::ns_per_tick() {
  // Calibrated once per process (function-local static): a ~1 ms busy window
  // against steady_clock. Per-run Profiler construction therefore pays
  // nothing, which keeps the A/B overhead bench honest.
  static const double v = [] {
    using sc = std::chrono::steady_clock;
    const auto t0 = sc::now();
    const std::uint64_t c0 = ticks();
    const auto deadline = t0 + std::chrono::milliseconds(1);
    while (sc::now() < deadline) {
    }
    const auto t1 = sc::now();
    const std::uint64_t c1 = ticks();
    const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    return c1 > c0 ? ns / static_cast<double>(c1 - c0) : 1.0;
  }();
  return v;
}

double ProfStats::quantile_ticks(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double lo_rank = static_cast<double>(seen);
    seen += buckets[i];
    if (rank >= static_cast<double>(seen)) continue;
    const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
    const double hi = std::ldexp(1.0, static_cast<int>(i) + 1);
    const double frac =
        (rank - lo_rank) / static_cast<double>(buckets[i]);
    const double est = lo + frac * (hi - lo);
    return std::clamp(est, static_cast<double>(min_or_zero()),
                      static_cast<double>(max));
  }
  return static_cast<double>(max);
}

const char* to_string(ProfClass c) noexcept {
  switch (c) {
    case ProfClass::kCentral: return "central";
    case ProfClass::kAppSpector: return "appspector";
    case ProfClass::kBroker: return "broker";
    case ProfClass::kDaemon: return "daemon";
    case ProfClass::kClient: return "client";
    case ProfClass::kOther: break;
  }
  return "other";
}

const char* to_string(ProfPhase p) noexcept {
  switch (p) {
    case ProfPhase::kExecute: return "execute";
    case ProfPhase::kMailboxDrain: return "mailbox_drain";
    case ProfPhase::kMerge: return "merge";
    case ProfPhase::kBarrierWait: return "barrier_wait";
    case ProfPhase::kIdle: return "idle";
  }
  return "unknown";
}

Profiler::Profiler(ProfilerConfig config) : config_(config) {
  if (config_.lanes == 0) config_.lanes = 1;
  lanes_.resize(config_.lanes);
  pool_.resize(config_.lanes);
  drain_w_.assign(config_.lanes, 0);
  timeline_.resize(config_.timeline_capacity);
  kind_names_.resize(ProfilerLane::kKindSlots);
  // Force calibration now so the first hot-path conversion and the A/B bench
  // arms never observe the spin.
  (void)HostClock::ns_per_tick();
}

void Profiler::set_kind_name(std::size_t slot, std::string name) {
  if (slot < kind_names_.size()) kind_names_[slot] = std::move(name);
}

void Profiler::begin_run() noexcept {
  run_start_ = HostClock::ticks();
  if (!started_) {
    first_tick_ = run_start_;
    started_ = true;
  }
}

void Profiler::end_run() noexcept {
  wall_ticks_ += sat_sub(HostClock::ticks(), run_start_);
}

void Profiler::barrier_begin() noexcept {
  barrier_t0_ = HostClock::ticks();
  std::fill(drain_w_.begin(), drain_w_.end(), 0);
}

void Profiler::add_drain(std::size_t i, std::uint64_t ticks) noexcept {
  if (i >= lanes_.size()) return;
  lanes_[i].drain_ += ticks;
  drain_w_[i] += ticks;
}

void Profiler::barrier_end() noexcept {
  barrier_t2_ = HostClock::ticks();
  const std::uint64_t span = sat_sub(barrier_t2_, barrier_t0_);
  for (std::size_t s = 0; s < lanes_.size(); ++s) {
    lanes_[s].merge_ += sat_sub(span, drain_w_[s]);
  }
  push_slice(barrier_t0_, barrier_t2_, 0, 1, 0);
}

void Profiler::window_launch(double tmin) noexcept {
  ++window_count_;
  if (has_last_tmin_) advance_.add(tmin - last_tmin_);
  last_tmin_ = tmin;
  has_last_tmin_ = true;
}

void Profiler::window_complete() noexcept {
  const std::uint64_t t3 = HostClock::ticks();
  for (std::size_t s = 0; s < lanes_.size(); ++s) {
    ProfilerLane& l = lanes_[s];
    l.barrier_wait_ += sat_sub(l.task_start_, barrier_t2_);
    l.barrier_wait_ += sat_sub(t3, l.task_end_);
    window_events_.record(l.events_ - l.events_at_task_start_);
    push_slice(l.task_start_, l.task_end_, static_cast<std::uint32_t>(s), 0,
               l.events_ - l.events_at_task_start_);
  }
}

Profiler::LanePhases Profiler::lane_phases(std::size_t i) const noexcept {
  LanePhases out;
  if (i >= lanes_.size()) return out;
  const ProfilerLane& l = lanes_[i];
  const double scale = HostClock::ns_per_tick() * 1e-9;
  const double execute = static_cast<double>(l.execute_) * scale;
  const double drain = static_cast<double>(l.drain_) * scale;
  const double merge = static_cast<double>(l.merge_) * scale;
  const double barrier = static_cast<double>(l.barrier_wait_) * scale;
  out.wall_seconds = static_cast<double>(wall_ticks_) * scale;
  // Idle is the explicit remainder over disjoint measured intervals, so the
  // five phases sum to the lane's wall clock exactly (clamped at zero in
  // case of sub-microsecond cross-core clock skew).
  const double accounted = execute + drain + merge + barrier;
  out.seconds[static_cast<std::size_t>(ProfPhase::kExecute)] = execute;
  out.seconds[static_cast<std::size_t>(ProfPhase::kMailboxDrain)] = drain;
  out.seconds[static_cast<std::size_t>(ProfPhase::kMerge)] = merge;
  out.seconds[static_cast<std::size_t>(ProfPhase::kBarrierWait)] = barrier;
  out.seconds[static_cast<std::size_t>(ProfPhase::kIdle)] =
      std::max(0.0, out.wall_seconds - accounted);
  out.events = l.events_;
  out.windows = l.windows_;
  return out;
}

double Profiler::wall_seconds() const noexcept {
  return static_cast<double>(wall_ticks_) * HostClock::ns_per_tick() * 1e-9;
}

std::uint64_t Profiler::events_total() const noexcept {
  std::uint64_t n = 0;
  for (const ProfilerLane& l : lanes_) n += l.events_;
  return n;
}

double Profiler::lookahead_efficiency() const noexcept {
  if (config_.lookahead <= 0.0 || advance_.count == 0) return 0.0;
  return advance_.mean() / config_.lookahead;
}

void Profiler::finalize() {
  metrics_ = MetricsRegistry{};
  const double scale = HostClock::ns_per_tick() * 1e-9;

  metrics_.gauge("faucets_prof_wall_seconds", "Profiled run wall clock")
      .set(wall_seconds());
  metrics_
      .gauge("faucets_prof_calibration_ns_per_tick",
             "Host clock calibration (nanoseconds per tick)")
      .set(HostClock::ns_per_tick());
  metrics_
      .counter("faucets_prof_events_total",
               "Events dispatched under the profiler")
      .inc(events_total());
  metrics_
      .counter("faucets_prof_windows_total",
               "Conservative lookahead windows executed")
      .inc(window_count_);
  metrics_
      .counter("faucets_prof_timeline_dropped_total",
               "Host timeline slices dropped once the buffer filled")
      .inc(timeline_dropped_);
  if (config_.lookahead > 0.0) {
    metrics_
        .gauge("faucets_prof_lookahead_efficiency",
               "Mean per-window t_min advance over the lookahead span")
        .set(lookahead_efficiency());
  }

  // Exclusive per-shard phase decomposition.
  for (std::size_t s = 0; s < lanes_.size(); ++s) {
    const LanePhases phases = lane_phases(s);
    for (std::size_t p = 0; p < kProfPhaseCount; ++p) {
      metrics_
          .gauge("faucets_prof_phase_seconds{shard=\"" + std::to_string(s) +
                     "\",phase=\"" +
                     to_string(static_cast<ProfPhase>(p)) + "\"}",
                 "Exclusive wall-clock phase per shard lane")
          .set(phases.seconds[p]);
    }
  }

  // Per-event self time by message kind and by entity class: fold the POD
  // tick buckets into MetricsRegistry histograms whose bounds are the
  // power-of-two tick edges converted to seconds.
  std::vector<double> bounds(ProfStats::kBuckets);
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    bounds[i] = std::ldexp(1.0, static_cast<int>(i) + 1) * scale;
  }
  const auto fold = [&](const std::string& name, const ProfStats& stats) {
    if (stats.count == 0) return;
    Histogram& h = metrics_.histogram(
        name, bounds, "Per-event self time (host seconds)");
    h.fold_prebinned(stats.buckets.data(), stats.buckets.size(),
                     static_cast<double>(stats.total) * scale,
                     static_cast<double>(stats.min_or_zero()) * scale,
                     static_cast<double>(stats.max) * scale);
  };
  for (std::size_t k = 0; k < ProfilerLane::kKindSlots; ++k) {
    ProfStats merged;
    for (const ProfilerLane& l : lanes_) merged.merge_from(l.by_kind_[k]);
    if (merged.count == 0) continue;
    const std::string kind =
        kind_names_[k].empty() ? "slot" + std::to_string(k) : kind_names_[k];
    fold("faucets_prof_event_self_seconds{kind=\"" + kind + "\"}", merged);
  }
  for (std::size_t c = 0; c < kProfClassCount; ++c) {
    ProfStats merged;
    for (const ProfilerLane& l : lanes_) merged.merge_from(l.by_class_[c]);
    if (merged.count == 0) continue;
    fold("faucets_prof_entity_self_seconds{entity=\"" +
             std::string(to_string(static_cast<ProfClass>(c))) + "\"}",
         merged);
  }

  // Thread-pool workers (sharded runs only; unsharded runs have no pool).
  for (std::size_t w = 0; w < pool_.size(); ++w) {
    if (pool_[w].tasks == 0) continue;
    const std::string worker = std::to_string(w);
    const double busy = static_cast<double>(pool_[w].busy) * scale;
    metrics_
        .gauge("faucets_prof_pool_busy_seconds{worker=\"" + worker + "\"}",
               "Thread-pool worker time spent inside tasks")
        .set(busy);
    metrics_
        .gauge("faucets_prof_pool_idle_seconds{worker=\"" + worker + "\"}",
               "Thread-pool worker wall clock minus busy time")
        .set(std::max(0.0, wall_seconds() - busy));
    metrics_
        .counter("faucets_prof_pool_tasks_total{worker=\"" + worker + "\"}",
                 "Tasks executed by this worker")
        .inc(pool_[w].tasks);
    metrics_
        .counter("faucets_prof_pool_steals_total{worker=\"" + worker + "\"}",
                 "Tasks this worker stole from a sibling deque")
        .inc(pool_[w].steals);
  }
}

void Profiler::write_json(std::ostream& os) const {
  const double scale = HostClock::ns_per_tick() * 1e-9;
  const double us = HostClock::ns_per_tick() * 1e-3;

  os << "{\n";
  os << "  \"schema\": 1,\n";
  os << "  \"clock\": {\"source\": \"" << HostClock::source()
     << "\", \"ns_per_tick\": " << json_number(HostClock::ns_per_tick())
     << "},\n";
  os << "  \"wall_seconds\": " << json_number(wall_seconds()) << ",\n";
  os << "  \"events_total\": " << events_total() << ",\n";

  os << "  \"windows\": {\"count\": " << window_count_
     << ", \"advance\": {\"mean\": " << json_number(advance_.mean())
     << ", \"min\": " << json_number(advance_.min_or_zero())
     << ", \"max\": " << json_number(advance_.max_or_zero())
     << "}, \"events_per_window\": {\"mean\": "
     << json_number(window_events_.mean())
     << ", \"min\": " << window_events_.min_or_zero()
     << ", \"max\": " << window_events_.max
     << "}, \"lookahead\": " << json_number(config_.lookahead)
     << ", \"lookahead_efficiency\": " << json_number(lookahead_efficiency())
     << "},\n";

  const auto stats_json = [&](std::ostream& o, const char* key,
                              const std::string& name,
                              const ProfStats& stats) {
    o << "    {\"" << key << "\": \"" << json_escape(name)
      << "\", \"count\": " << stats.count
      << ", \"seconds\": " << json_number(static_cast<double>(stats.total) * scale)
      << ", \"mean_us\": " << json_number(stats.mean() * us)
      << ", \"min_us\": "
      << json_number(static_cast<double>(stats.min_or_zero()) * us)
      << ", \"max_us\": " << json_number(static_cast<double>(stats.max) * us)
      << ", \"p50_us\": " << json_number(stats.quantile_ticks(0.5) * us)
      << ", \"p99_us\": " << json_number(stats.quantile_ticks(0.99) * us)
      << "}";
  };

  os << "  \"kinds\": [\n";
  bool first = true;
  for (std::size_t k = 0; k < ProfilerLane::kKindSlots; ++k) {
    ProfStats merged;
    for (const ProfilerLane& l : lanes_) merged.merge_from(l.by_kind_[k]);
    if (merged.count == 0) continue;
    if (!first) os << ",\n";
    first = false;
    const std::string kind =
        kind_names_[k].empty() ? "slot" + std::to_string(k) : kind_names_[k];
    stats_json(os, "kind", kind, merged);
  }
  os << "\n  ],\n";

  os << "  \"entities\": [\n";
  first = true;
  for (std::size_t c = 0; c < kProfClassCount; ++c) {
    ProfStats merged;
    for (const ProfilerLane& l : lanes_) merged.merge_from(l.by_class_[c]);
    if (merged.count == 0) continue;
    if (!first) os << ",\n";
    first = false;
    stats_json(os, "entity", to_string(static_cast<ProfClass>(c)), merged);
  }
  os << "\n  ],\n";

  os << "  \"shards\": [\n";
  for (std::size_t s = 0; s < lanes_.size(); ++s) {
    const LanePhases phases = lane_phases(s);
    os << "    {\"shard\": " << s
       << ", \"wall_seconds\": " << json_number(phases.wall_seconds)
       << ", \"events\": " << phases.events
       << ", \"windows\": " << phases.windows << ", \"phases\": {";
    for (std::size_t p = 0; p < kProfPhaseCount; ++p) {
      os << (p == 0 ? "" : ", ") << "\""
         << to_string(static_cast<ProfPhase>(p))
         << "\": " << json_number(phases.seconds[p]);
    }
    os << "}}" << (s + 1 < lanes_.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  os << "  \"pool\": [\n";
  first = true;
  for (std::size_t w = 0; w < pool_.size(); ++w) {
    if (pool_[w].tasks == 0) continue;
    if (!first) os << ",\n";
    first = false;
    const double busy = static_cast<double>(pool_[w].busy) * scale;
    os << "    {\"worker\": " << w << ", \"busy_seconds\": "
       << json_number(busy) << ", \"idle_seconds\": "
       << json_number(std::max(0.0, wall_seconds() - busy))
       << ", \"tasks\": " << pool_[w].tasks
       << ", \"steals\": " << pool_[w].steals << "}";
  }
  os << "\n  ],\n";
  os << "  \"timeline_dropped\": " << timeline_dropped_ << "\n";
  os << "}\n";
}

void Profiler::write_prometheus(std::ostream& os) const {
  obs::write_prometheus(os, metrics_);
}

void Profiler::write_chrome(std::ostream& os) const {
  const double us = HostClock::ns_per_tick() * 1e-3;
  const auto rel_us = [&](std::uint64_t t) {
    return static_cast<double>(sat_sub(t, first_tick_)) * us;
  };

  os << "{\"displayTimeUnit\": \"ms\",\n";
  os << "\"otherData\": {\"clock\": \"host\", \"source\": \""
     << HostClock::source() << "\", \"ns_per_tick\": "
     << json_number(HostClock::ns_per_tick()) << "},\n";
  os << "\"traceEvents\": [\n";

  os << " {\"ph\": \"M\", \"pid\": " << kHostShardPid
     << ", \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": "
        "\"host: shards\"}}";
  for (std::size_t s = 0; s < lanes_.size(); ++s) {
    os << ",\n {\"ph\": \"M\", \"pid\": " << kHostShardPid << ", \"tid\": " << s
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \"shard " << s
       << "\"}}";
  }
  os << ",\n {\"ph\": \"M\", \"pid\": " << kHostCoordinatorPid
     << ", \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": "
        "\"host: coordinator\"}}";
  os << ",\n {\"ph\": \"M\", \"pid\": " << kHostCoordinatorPid
     << ", \"tid\": 0, \"name\": \"thread_name\", \"args\": {\"name\": "
        "\"barrier\"}}";

  for (std::size_t i = 0; i < timeline_used_; ++i) {
    const TimelineSlice& sl = timeline_[i];
    const double ts = rel_us(sl.start);
    const double dur = std::max(0.0, rel_us(sl.end) - ts);
    if (sl.kind == 0) {
      os << ",\n {\"ph\": \"X\", \"pid\": " << kHostShardPid
         << ", \"tid\": " << sl.lane << ", \"name\": \"window\", \"cat\": "
            "\"host\", \"ts\": "
         << json_number(ts) << ", \"dur\": " << json_number(dur)
         << ", \"args\": {\"events\": " << sl.events << "}}";
    } else {
      os << ",\n {\"ph\": \"X\", \"pid\": " << kHostCoordinatorPid
         << ", \"tid\": 0, \"name\": \"barrier\", \"cat\": \"host\", "
            "\"ts\": "
         << json_number(ts) << ", \"dur\": " << json_number(dur)
         << ", \"args\": {}}";
    }
  }
  os << "\n]}\n";
}

void Profiler::append_sweep_metrics(
    std::vector<std::pair<std::string, double>>& metrics) const {
  double execute = 0.0;
  double drain = 0.0;
  double merge = 0.0;
  double barrier = 0.0;
  double idle = 0.0;
  for (std::size_t s = 0; s < lanes_.size(); ++s) {
    const LanePhases phases = lane_phases(s);
    execute += phases.of(ProfPhase::kExecute);
    drain += phases.of(ProfPhase::kMailboxDrain);
    merge += phases.of(ProfPhase::kMerge);
    barrier += phases.of(ProfPhase::kBarrierWait);
    idle += phases.of(ProfPhase::kIdle);
  }
  const double wall = wall_seconds();
  metrics.emplace_back("prof_wall_ms", wall * 1e3);
  metrics.emplace_back("prof_execute_ms", execute * 1e3);
  metrics.emplace_back("prof_mailbox_drain_ms", drain * 1e3);
  metrics.emplace_back("prof_merge_ms", merge * 1e3);
  metrics.emplace_back("prof_barrier_wait_ms", barrier * 1e3);
  metrics.emplace_back("prof_idle_ms", idle * 1e3);
  metrics.emplace_back("prof_events", static_cast<double>(events_total()));
  metrics.emplace_back("prof_windows", static_cast<double>(window_count_));
  metrics.emplace_back(
      "prof_events_per_sec",
      wall > 0.0 ? static_cast<double>(events_total()) / wall : 0.0);
}

}  // namespace faucets::obs
