// The observability bundle SimContext owns: one trace ring, one metrics
// registry, one span tracker, one time-series sampler per simulation.
// Entities reach it through ctx.trace() / ctx.metrics() / ctx.spans() /
// ctx.sampler(); exporters (src/obs/exporters.hpp, src/obs/report.hpp)
// serialize it after the run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/obs/metrics.hpp"
#include "src/obs/sampler.hpp"
#include "src/obs/spans.hpp"
#include "src/obs/trace.hpp"

namespace faucets::obs {

struct ObservabilityConfig {
  /// Ring capacity in events; rounded up to a power of two.
  std::size_t trace_capacity = 1 << 16;
  /// Shared registration sequencer for sharded runs (see
  /// MetricsRegistry::set_sequencer); null for a standalone registry.
  std::atomic<std::uint64_t>* metrics_sequencer = nullptr;
};

class Observability {
 public:
  explicit Observability(ObservabilityConfig config = {})
      : trace_(config.trace_capacity) {
    metrics_.set_sequencer(config.metrics_sequencer);
  }

  [[nodiscard]] TraceBuffer& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceBuffer& trace() const noexcept { return trace_; }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept { return metrics_; }
  [[nodiscard]] SpanTracker& spans() noexcept { return spans_; }
  [[nodiscard]] const SpanTracker& spans() const noexcept { return spans_; }
  [[nodiscard]] Sampler& sampler() noexcept { return sampler_; }
  [[nodiscard]] const Sampler& sampler() const noexcept { return sampler_; }

 private:
  TraceBuffer trace_;
  MetricsRegistry metrics_;
  SpanTracker spans_;
  Sampler sampler_;
};

}  // namespace faucets::obs
