#include "src/cluster/allocator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace faucets::cluster {

ContiguousAllocator::ContiguousAllocator(int total_procs) : total_(total_procs) {
  if (total_procs <= 0) throw std::invalid_argument("allocator needs > 0 processors");
  free_.push_back(ProcRange{0, total_procs});
}

std::optional<ProcRange> ContiguousAllocator::allocate(int n) {
  if (n <= 0) return ProcRange{0, 0};
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->size() >= n) {
      const ProcRange out{it->begin, it->begin + n};
      it->begin += n;
      if (it->size() == 0) free_.erase(it);
      return out;
    }
  }
  return std::nullopt;
}

std::vector<ProcRange> ContiguousAllocator::allocate_scattered(int n) {
  if (n <= 0) return {};
  if (free_count() < n) return {};
  std::vector<ProcRange> out;
  int need = n;
  while (need > 0) {
    auto& hole = free_.front();
    const int take = std::min(need, hole.size());
    out.push_back(ProcRange{hole.begin, hole.begin + take});
    hole.begin += take;
    if (hole.size() == 0) free_.erase(free_.begin());
    need -= take;
  }
  return out;
}

void ContiguousAllocator::release(ProcRange range) {
  if (range.size() <= 0) return;
  if (range.begin < 0 || range.end > total_) {
    throw std::out_of_range("release: range outside machine");
  }
  auto it = std::lower_bound(free_.begin(), free_.end(), range,
                             [](const ProcRange& a, const ProcRange& b) {
                               return a.begin < b.begin;
                             });
  // Overlap with neighbours means a double release: a logic error.
  if (it != free_.end() && range.end > it->begin) {
    throw std::logic_error("release: overlaps a free range");
  }
  if (it != free_.begin() && std::prev(it)->end > range.begin) {
    throw std::logic_error("release: overlaps a free range");
  }
  it = free_.insert(it, range);
  // Coalesce with successor, then predecessor.
  if (std::next(it) != free_.end() && it->end == std::next(it)->begin) {
    it->end = std::next(it)->end;
    free_.erase(std::next(it));
  }
  if (it != free_.begin() && std::prev(it)->end == it->begin) {
    std::prev(it)->end = it->end;
    free_.erase(it);
  }
}

int ContiguousAllocator::free_count() const noexcept {
  int n = 0;
  for (const auto& r : free_) n += r.size();
  return n;
}

int ContiguousAllocator::largest_free_block() const noexcept {
  int best = 0;
  for (const auto& r : free_) best = std::max(best, r.size());
  return best;
}

double ContiguousAllocator::fragmentation() const noexcept {
  const int free_total = free_count();
  if (free_total == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_block()) /
                   static_cast<double>(free_total);
}

bool ContiguousAllocator::invariants_hold() const noexcept {
  int prev_end = -1;
  for (const auto& r : free_) {
    if (r.begin < 0 || r.end > total_ || r.size() <= 0) return false;
    if (r.begin <= prev_end) return false;  // also catches missed coalesce
    prev_end = r.end;
  }
  return free_count() <= total_;
}

}  // namespace faucets::cluster
