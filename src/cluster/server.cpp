#include "src/cluster/server.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "src/util/logging.hpp"

namespace faucets::cluster {

namespace {
constexpr double kInf = 1e300;
/// Relative tolerance for "the job is done".
constexpr double kDoneTolerance = 1e-6;
}  // namespace

ClusterManager::ClusterManager(sim::SimContext& ctx, MachineSpec machine,
                               std::unique_ptr<sched::Strategy> strategy,
                               job::AdaptiveCosts costs, ClusterId id)
    : ctx_(&ctx),
      engine_(&ctx.engine()),
      machine_(std::move(machine)),
      strategy_(std::move(strategy)),
      costs_(costs),
      id_(id),
      metrics_(machine_.total_procs) {
  if (!strategy_) throw std::invalid_argument("ClusterManager needs a strategy");
  metrics_.record_busy(engine_->now(), 0);
}

sched::SchedulerContext ClusterManager::context() const {
  sched::SchedulerContext ctx;
  ctx.now = engine_->now();
  ctx.sim = ctx_;
  ctx.machine = &machine_;
  ctx.running.reserve(running_.size());
  for (JobId id : running_) ctx.running.push_back(jobs_.at(id).get());
  ctx.queued.reserve(queued_.size());
  for (JobId id : queued_) ctx.queued.push_back(jobs_.at(id).get());
  return ctx;
}

sched::AdmissionDecision ClusterManager::query(const qos::QosContract& contract) const {
  if (!contract.valid()) return sched::AdmissionDecision::rejected("invalid contract");
  if (!machine_.can_ever_run(contract)) {
    return sched::AdmissionDecision::rejected("machine cannot run this contract");
  }
  return strategy_->admit(context(), contract);
}

void ClusterManager::trace_event(const std::string& detail) {
  if (trace_ != nullptr) {
    trace_->record(engine_->now(), EntityId{id_.value()}, "job", detail);
  }
}

std::optional<JobId> ClusterManager::submit(UserId owner,
                                            const qos::QosContract& contract) {
  const auto decision = query(contract);
  if (!decision.accept) {
    metrics_.on_rejected();
    trace_event("reject: " + decision.reason);
    FAUCETS_DEBUG("cm") << machine_.name << " rejected job: " << decision.reason;
    return std::nullopt;
  }
  const JobId id = job_ids_.next();
  trace_event("accept job " + std::to_string(id.value()));
  auto j = std::make_unique<job::Job>(id, owner, contract, engine_->now());
  j->mark_queued();
  jobs_.emplace(id, std::move(j));
  queued_.push_back(id);
  reschedule();
  return id;
}

void ClusterManager::advance_all() {
  const double now = engine_->now();
  for (JobId id : running_) jobs_.at(id)->advance_to(now);
}

void ClusterManager::apply_allocations(const std::vector<sched::Allocation>& allocations) {
  const double now = engine_->now();

  // Apply shrinks and vacates first so capacity is never exceeded, then
  // expansions and starts.
  auto apply_one = [&](const sched::Allocation& a) {
    auto it = jobs_.find(a.job);
    if (it == jobs_.end()) return;
    job::Job& j = *it->second;
    const int target =
        a.procs == 0
            ? 0
            : std::clamp(a.procs, j.contract().min_procs, j.contract().max_procs);
    if (target == j.procs()) return;

    const bool was_running = j.procs() > 0;
    if (!was_running && target > 0) {
      if (j.start_time() < 0.0) {
        j.start(now, target, machine_.speed_factor, costs_);
        trace_event("start job " + std::to_string(a.job.value()) + " procs=" +
                    std::to_string(target));
      } else {
        j.reallocate(now, target);
        trace_event("resume job " + std::to_string(a.job.value()) + " procs=" +
                    std::to_string(target));
      }
      std::erase(queued_, a.job);
      running_.push_back(a.job);
      // Keep running_ in submit order for deterministic contexts.
      std::sort(running_.begin(), running_.end());
    } else if (was_running && target == 0) {
      j.reallocate(now, 0);
      std::erase(running_, a.job);
      queued_.push_back(a.job);
      std::sort(queued_.begin(), queued_.end());
      trace_event("vacate job " + std::to_string(a.job.value()));
    } else if (was_running) {
      const bool shrink = target < j.procs();
      j.reallocate(now, target);
      trace_event((shrink ? "shrink job " : "expand job ") +
                  std::to_string(a.job.value()) + " procs=" +
                  std::to_string(target));
    }
  };

  for (const auto& a : allocations) {
    const auto it = jobs_.find(a.job);
    if (it == jobs_.end()) continue;
    if (a.procs < it->second->procs()) apply_one(a);
  }
  for (const auto& a : allocations) {
    const auto it = jobs_.find(a.job);
    if (it == jobs_.end()) continue;
    if (a.procs > it->second->procs()) apply_one(a);
  }

  const int busy = busy_procs();
  if (busy > machine_.total_procs) {
    throw std::logic_error("strategy over-committed the machine: " +
                           std::to_string(busy) + " > " +
                           std::to_string(machine_.total_procs));
  }
  metrics_.record_busy(now, busy);
}

void ClusterManager::reschedule() {
  if (rescheduling_) return;  // strategies may trigger nested updates
  rescheduling_ = true;
  advance_all();
  const auto allocations = strategy_->schedule(context());
  apply_allocations(allocations);
  rescheduling_ = false;
  arm_completion_timer();
}

void ClusterManager::arm_completion_timer() {
  completion_timer_.cancel();
  double next = kInf;
  for (JobId id : running_) {
    // Phase boundaries also wake the scheduler: the paper notes the
    // scheduler benefits from knowing when a job's performance parameters
    // shift between phases (§2.1).
    next = std::min(next, jobs_.at(id)->next_event_time(engine_->now()));
  }
  if (next >= kInf) return;
  completion_timer_ = engine_->schedule_at(next, [this] { handle_completions(); });
}

void ClusterManager::handle_completions() {
  advance_all();
  const double now = engine_->now();
  std::vector<JobId> done;
  for (JobId id : running_) {
    job::Job& j = *jobs_.at(id);
    if (j.remaining_work() <= kDoneTolerance * std::max(1.0, j.total_work())) {
      done.push_back(id);
    }
  }
  for (JobId id : done) {
    job::Job& j = *jobs_.at(id);
    j.complete(now);
    std::erase(running_, id);
    metrics_.on_completed(j);
    trace_event("complete job " + std::to_string(id.value()));
    FAUCETS_DEBUG("cm") << machine_.name << " completed job " << id;
    if (on_complete_) on_complete_(j);
  }
  metrics_.record_busy(now, busy_procs());
  reschedule();
}

std::optional<ClusterManager::Evicted> ClusterManager::evict_job(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  job::Job& j = *it->second;
  if (j.state() == job::JobState::kCompleted ||
      j.state() == job::JobState::kFailed) {
    return std::nullopt;
  }
  const double now = engine_->now();
  if (j.state() == job::JobState::kRunning) {
    j.checkpoint(now);
  }
  Evicted out;
  out.job = id;
  out.owner = j.owner();
  out.contract = j.contract();
  out.completed_work = j.total_work() - j.remaining_work();
  std::erase(running_, id);
  std::erase(queued_, id);
  jobs_.erase(it);
  trace_event("evict job " + std::to_string(id.value()));
  metrics_.record_busy(now, busy_procs());
  reschedule();
  return out;
}

std::vector<ClusterManager::Evicted> ClusterManager::evict_all() {
  std::vector<JobId> ids;
  ids.reserve(running_.size() + queued_.size());
  ids.insert(ids.end(), running_.begin(), running_.end());
  ids.insert(ids.end(), queued_.begin(), queued_.end());
  std::vector<Evicted> out;
  for (JobId id : ids) {
    if (auto e = evict_job(id)) out.push_back(std::move(*e));
  }
  completion_timer_.cancel();
  return out;
}

void ClusterManager::halt() {
  completion_timer_.cancel();
  const double now = engine_->now();
  for (JobId id : running_) jobs_.at(id)->mark_failed(now);
  for (JobId id : queued_) jobs_.at(id)->mark_failed(now);
  for (std::size_t i = 0; i < running_.size() + queued_.size(); ++i) {
    metrics_.on_failed();
  }
  running_.clear();
  queued_.clear();
  metrics_.record_busy(now, 0);
  on_complete_ = nullptr;
}

int ClusterManager::busy_procs() const noexcept {
  int n = 0;
  for (JobId id : running_) n += jobs_.at(id)->procs();
  return n;
}

double ClusterManager::projected_utilization(double from, double to) const {
  if (to <= from || machine_.total_procs <= 0) return 0.0;
  double proc_seconds = 0.0;
  for (JobId id : running_) {
    const job::Job& j = *jobs_.at(id);
    const double finish = std::min(j.projected_finish(from), to);
    if (finish > from) proc_seconds += j.procs() * (finish - from);
  }
  // Queued jobs will occupy at least min_procs for their minimal runtime.
  for (JobId id : queued_) {
    const job::Job& j = *jobs_.at(id);
    const double runtime = j.time_to_finish_on(j.contract().min_procs);
    const double span = std::min(runtime, to - from);
    if (span > 0.0 && runtime < kInf) proc_seconds += j.contract().min_procs * span;
  }
  const double capacity = static_cast<double>(machine_.total_procs) * (to - from);
  return std::min(1.0, proc_seconds / capacity);
}

const job::Job* ClusterManager::find_job(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

std::vector<const job::Job*> ClusterManager::running_jobs() const {
  std::vector<const job::Job*> out;
  out.reserve(running_.size());
  for (JobId id : running_) out.push_back(jobs_.at(id).get());
  return out;
}

std::vector<const job::Job*> ClusterManager::queued_jobs() const {
  std::vector<const job::Job*> out;
  out.reserve(queued_.size());
  for (JobId id : queued_) out.push_back(jobs_.at(id).get());
  return out;
}

}  // namespace faucets::cluster
