#include "src/cluster/server.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "src/util/logging.hpp"

namespace faucets::cluster {

namespace {
constexpr double kInf = 1e300;
/// Relative tolerance for "the job is done".
constexpr double kDoneTolerance = 1e-6;

std::string labelled(const std::string& base, const std::string& cluster) {
  return base + "{cluster=\"" + cluster + "\"}";
}
}  // namespace

ClusterManager::ClusterManager(sim::SimContext& ctx, MachineSpec machine,
                               std::unique_ptr<sched::Strategy> strategy,
                               job::AdaptiveCosts costs, ClusterId id)
    : ctx_(&ctx),
      engine_(&ctx.engine()),
      machine_(std::move(machine)),
      strategy_(std::move(strategy)),
      costs_(costs),
      id_(id),
      metrics_(machine_.total_procs) {
  if (!strategy_) throw std::invalid_argument("ClusterManager needs a strategy");
  auto& reg = ctx_->metrics();
  completed_ctr_ = &reg.counter(labelled("faucets_cm_jobs_completed_total", machine_.name),
                                "Jobs finished on this Compute Server");
  rejected_ctr_ = &reg.counter(labelled("faucets_cm_jobs_rejected_total", machine_.name),
                               "Submissions refused at admission");
  busy_gauge_ = &reg.gauge(labelled("faucets_cm_busy_procs", machine_.name),
                           "Processors currently allocated to jobs");
  wait_hist_ = &reg.histogram(labelled("faucets_job_wait_seconds", machine_.name),
                              obs::exponential_buckets(1.0, 2.0, 16),
                              "Queue wait time of completed jobs");
  slowdown_hist_ = &reg.histogram(labelled("faucets_job_slowdown", machine_.name),
                                  obs::exponential_buckets(1.0, 1.5, 16),
                                  "Bounded slowdown of completed jobs");
  occupancy_hist_ = &reg.histogram(labelled("faucets_cm_occupancy", machine_.name),
                                   obs::linear_buckets(0.05, 0.05, 20),
                                   "Fraction of processors busy, sampled at "
                                   "every allocation change");
  // Time-series signals: inert unless GridSystem arms periodic sampling.
  auto& sampler = ctx_->sampler();
  sampler.add_series(
      labelled("faucets_cluster_utilization", machine_.name),
      [this] {
        return machine_.total_procs == 0
                   ? 0.0
                   : static_cast<double>(metrics_.current_busy()) /
                         static_cast<double>(machine_.total_procs);
      },
      "fraction");
  sampler.add_series(labelled("faucets_cluster_queue_depth", machine_.name),
                     [this] { return static_cast<double>(queued_.size()); },
                     "jobs");
  sampler.add_series(
      labelled("faucets_cluster_reservations", machine_.name),
      [this] { return static_cast<double>(reservations_.size()); }, "leases");
  metrics_.record_busy(engine_->now(), 0);
}

void ClusterManager::emit(obs::TraceEventKind kind, JobId job, UserId user,
                          int procs) {
  ctx_->trace().record(obs::job_event(engine_->now(), EntityId{id_.value()}, kind,
                                      id_, job, user, procs));
}

void ClusterManager::observe_busy(double now, int busy) {
  metrics_.record_busy(now, busy);
  busy_gauge_->set(busy);
  if (machine_.total_procs > 0) {
    occupancy_hist_->observe(static_cast<double>(busy) /
                             static_cast<double>(machine_.total_procs));
  }
}

void ClusterManager::close_job_spans(JobId id, obs::SpanKind kind, double now) {
  const auto it = job_spans_.find(id);
  if (it == job_spans_.end()) return;
  auto& spans = ctx_->spans();
  const SpanId open = [&] {
    if (it->second.run.valid()) {
      const obs::Span* run = spans.find(it->second.run);
      if (run != nullptr && run->open()) return it->second.run;
    }
    return it->second.queue;
  }();
  spans.end_span(open, now);
  spans.instant_span(kind, now, EntityId{id_.value()}, open);
  job_spans_.erase(it);
}

sched::SchedulerContext ClusterManager::context() const {
  sched::SchedulerContext ctx;
  ctx.now = engine_->now();
  ctx.sim = ctx_;
  ctx.machine = &machine_;
  ctx.running.reserve(running_.size());
  for (JobId id : running_) ctx.running.push_back(jobs_.at(id).get());
  ctx.queued.reserve(queued_.size());
  for (JobId id : queued_) ctx.queued.push_back(jobs_.at(id).get());
  return ctx;
}

sched::AdmissionDecision ClusterManager::query(const qos::QosContract& contract) const {
  if (!contract.valid()) return sched::AdmissionDecision::rejected("invalid contract");
  if (!machine_.can_ever_run(contract)) {
    return sched::AdmissionDecision::rejected("machine cannot run this contract");
  }
  return strategy_->admit(context(), contract);
}

std::optional<JobId> ClusterManager::submit(UserId owner,
                                            const qos::QosContract& contract,
                                            SpanId parent) {
  const auto decision = query(contract);
  if (!decision.accept) {
    metrics_.on_rejected();
    rejected_ctr_->inc();
    emit(obs::TraceEventKind::kJobRejected, JobId{}, owner, contract.min_procs);
    FAUCETS_DEBUG("cm") << machine_.name << " rejected job: " << decision.reason;
    return std::nullopt;
  }
  const JobId id = job_ids_.next();
  const double now = engine_->now();
  emit(obs::TraceEventKind::kJobAccepted, id, owner, contract.min_procs);
  auto& spans = ctx_->spans();
  JobSpans js;
  js.queue = spans.start_span(obs::SpanKind::kQueue, now, EntityId{id_.value()}, parent);
  spans.set_user(js.queue, owner);
  spans.bind_job(js.queue, id_, id);
  job_spans_.emplace(id, js);
  auto j = std::make_unique<job::Job>(id, owner, contract, now);
  j->mark_queued();
  jobs_.emplace(id, std::move(j));
  queued_.push_back(id);
  reschedule();
  return id;
}

std::optional<ReservationId> ClusterManager::reserve(const qos::QosContract& contract,
                                                     double lease_until) {
  const auto decision = query(contract);
  if (!decision.accept) return std::nullopt;
  const ReservationId id = reservation_ids_.next();
  Reservation r;
  r.contract = contract;
  r.until = lease_until;
  r.expiry = engine_->schedule_at(lease_until, [this, id] { expire_reservation(id); });
  reservations_.emplace(id, std::move(r));
  return id;
}

std::optional<JobId> ClusterManager::commit_reservation(ReservationId id, UserId owner,
                                                        SpanId parent) {
  auto it = reservations_.find(id);
  if (it == reservations_.end()) return std::nullopt;
  const qos::QosContract contract = it->second.contract;
  it->second.expiry.cancel();
  reservations_.erase(it);
  // submit() re-runs admission: the machine may have shrunk or filled up
  // since the reserve (e.g. a competing commit landed first).
  return submit(owner, contract, parent);
}

bool ClusterManager::release_reservation(ReservationId id) {
  auto it = reservations_.find(id);
  if (it == reservations_.end()) return false;
  it->second.expiry.cancel();
  reservations_.erase(it);
  return true;
}

void ClusterManager::release_all_reservations() {
  for (auto& [id, r] : reservations_) r.expiry.cancel();
  reservations_.clear();
}

void ClusterManager::expire_reservation(ReservationId id) {
  auto it = reservations_.find(id);
  if (it == reservations_.end()) return;
  reservations_.erase(it);
  ctx_->trace().record(obs::market_event(engine_->now(), EntityId{id_.value()},
                                         obs::TraceEventKind::kLeaseExpired,
                                         RequestId{id.value()}, BidId{}, 0.0));
  if (on_lease_expired_) on_lease_expired_(id);
}

void ClusterManager::advance_all() {
  const double now = engine_->now();
  for (JobId id : running_) jobs_.at(id)->advance_to(now);
}

void ClusterManager::apply_allocations(const std::vector<sched::Allocation>& allocations) {
  const double now = engine_->now();
  auto& spans = ctx_->spans();

  // Apply shrinks and vacates first so capacity is never exceeded, then
  // expansions and starts.
  auto apply_one = [&](const sched::Allocation& a) {
    auto it = jobs_.find(a.job);
    if (it == jobs_.end()) return;
    job::Job& j = *it->second;
    const int target =
        a.procs == 0
            ? 0
            : std::clamp(a.procs, j.contract().min_procs, j.contract().max_procs);
    if (target == j.procs()) return;

    JobSpans& js = job_spans_[a.job];
    const bool was_running = j.procs() > 0;
    if (!was_running && target > 0) {
      if (j.start_time() < 0.0) {
        j.start(now, target, machine_.speed_factor, costs_);
        emit(obs::TraceEventKind::kJobStarted, a.job, j.owner(), target);
      } else {
        j.reallocate(now, target);
        emit(obs::TraceEventKind::kJobResumed, a.job, j.owner(), target);
      }
      spans.end_span(js.queue, now);
      js.run = spans.start_span(obs::SpanKind::kRun, now, EntityId{id_.value()},
                                js.queue);
      spans.set_value(js.run, target);
      std::erase(queued_, a.job);
      running_.push_back(a.job);
      // Keep running_ in submit order for deterministic contexts.
      std::sort(running_.begin(), running_.end());
    } else if (was_running && target == 0) {
      j.reallocate(now, 0);
      std::erase(running_, a.job);
      queued_.push_back(a.job);
      std::sort(queued_.begin(), queued_.end());
      emit(obs::TraceEventKind::kJobVacated, a.job, j.owner(), 0);
      spans.end_span(js.run, now);
      js.queue = spans.start_span(obs::SpanKind::kQueue, now, EntityId{id_.value()},
                                  js.run);
      js.run = SpanId{};
    } else if (was_running) {
      const bool shrink = target < j.procs();
      j.reallocate(now, target);
      emit(shrink ? obs::TraceEventKind::kJobShrunk : obs::TraceEventKind::kJobExpanded,
           a.job, j.owner(), target);
      spans.instant_span(obs::SpanKind::kReconfig, now, EntityId{id_.value()},
                         js.run, target);
    }
  };

  for (const auto& a : allocations) {
    const auto it = jobs_.find(a.job);
    if (it == jobs_.end()) continue;
    if (a.procs < it->second->procs()) apply_one(a);
  }
  for (const auto& a : allocations) {
    const auto it = jobs_.find(a.job);
    if (it == jobs_.end()) continue;
    if (a.procs > it->second->procs()) apply_one(a);
  }

  const int busy = busy_procs();
  if (busy > machine_.total_procs) {
    throw std::logic_error("strategy over-committed the machine: " +
                           std::to_string(busy) + " > " +
                           std::to_string(machine_.total_procs));
  }
  observe_busy(now, busy);
}

void ClusterManager::reschedule() {
  if (rescheduling_) return;  // strategies may trigger nested updates
  rescheduling_ = true;
  advance_all();
  const auto allocations = strategy_->schedule(context());
  apply_allocations(allocations);
  rescheduling_ = false;
  arm_completion_timer();
}

void ClusterManager::arm_completion_timer() {
  completion_timer_.cancel();
  double next = kInf;
  for (JobId id : running_) {
    // Phase boundaries also wake the scheduler: the paper notes the
    // scheduler benefits from knowing when a job's performance parameters
    // shift between phases (§2.1).
    next = std::min(next, jobs_.at(id)->next_event_time(engine_->now()));
  }
  if (next >= kInf) return;
  completion_timer_ = engine_->schedule_at(next, [this] { handle_completions(); });
}

void ClusterManager::handle_completions() {
  advance_all();
  const double now = engine_->now();
  std::vector<JobId> done;
  for (JobId id : running_) {
    job::Job& j = *jobs_.at(id);
    if (j.remaining_work() <= kDoneTolerance * std::max(1.0, j.total_work())) {
      done.push_back(id);
    }
  }
  for (JobId id : done) {
    job::Job& j = *jobs_.at(id);
    j.complete(now);
    std::erase(running_, id);
    metrics_.on_completed(j);
    completed_ctr_->inc();
    wait_hist_->observe(j.wait_time());
    slowdown_hist_->observe(j.bounded_slowdown());
    emit(obs::TraceEventKind::kJobCompleted, id, j.owner(), j.procs());
    close_job_spans(id, obs::SpanKind::kComplete, now);
    FAUCETS_DEBUG("cm") << machine_.name << " completed job " << id;
    if (on_complete_) on_complete_(j);
  }
  observe_busy(now, busy_procs());
  reschedule();
}

std::optional<ClusterManager::Evicted> ClusterManager::evict_job(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  job::Job& j = *it->second;
  if (j.state() == job::JobState::kCompleted ||
      j.state() == job::JobState::kFailed) {
    return std::nullopt;
  }
  const double now = engine_->now();
  if (j.state() == job::JobState::kRunning) {
    j.checkpoint(now);
  }
  Evicted out;
  out.job = id;
  out.owner = j.owner();
  out.contract = j.contract();
  out.completed_work = j.total_work() - j.remaining_work();
  emit(obs::TraceEventKind::kJobEvicted, id, j.owner(), j.procs());
  close_job_spans(id, obs::SpanKind::kEvicted, now);
  std::erase(running_, id);
  std::erase(queued_, id);
  jobs_.erase(it);
  observe_busy(now, busy_procs());
  reschedule();
  return out;
}

std::vector<ClusterManager::Evicted> ClusterManager::evict_all() {
  std::vector<JobId> ids;
  ids.reserve(running_.size() + queued_.size());
  ids.insert(ids.end(), running_.begin(), running_.end());
  ids.insert(ids.end(), queued_.begin(), queued_.end());
  std::vector<Evicted> out;
  for (JobId id : ids) {
    if (auto e = evict_job(id)) out.push_back(std::move(*e));
  }
  completion_timer_.cancel();
  return out;
}

void ClusterManager::halt() {
  completion_timer_.cancel();
  const double now = engine_->now();
  std::vector<JobId> lost;
  lost.reserve(running_.size() + queued_.size());
  lost.insert(lost.end(), running_.begin(), running_.end());
  lost.insert(lost.end(), queued_.begin(), queued_.end());
  for (JobId id : lost) {
    job::Job& j = *jobs_.at(id);
    j.mark_failed(now);
    metrics_.on_failed();
    emit(obs::TraceEventKind::kJobFailed, id, j.owner(), 0);
    close_job_spans(id, obs::SpanKind::kFailed, now);
  }
  running_.clear();
  queued_.clear();
  release_all_reservations();
  observe_busy(now, 0);
  on_complete_ = nullptr;
  on_lease_expired_ = nullptr;
}

int ClusterManager::busy_procs() const noexcept {
  int n = 0;
  for (JobId id : running_) n += jobs_.at(id)->procs();
  return n;
}

double ClusterManager::projected_utilization(double from, double to) const {
  if (to <= from || machine_.total_procs <= 0) return 0.0;
  double proc_seconds = 0.0;
  for (JobId id : running_) {
    const job::Job& j = *jobs_.at(id);
    const double finish = std::min(j.projected_finish(from), to);
    if (finish > from) proc_seconds += j.procs() * (finish - from);
  }
  // Queued jobs will occupy at least min_procs for their minimal runtime.
  for (JobId id : queued_) {
    const job::Job& j = *jobs_.at(id);
    const double runtime = j.time_to_finish_on(j.contract().min_procs);
    const double span = std::min(runtime, to - from);
    if (span > 0.0 && runtime < kInf) proc_seconds += j.contract().min_procs * span;
  }
  // Reserved-but-uncommitted capacity counts too, so concurrent bidders see
  // the held lease priced into the utilization signal.
  for (const auto& [rid, r] : reservations_) {
    const double runtime =
        r.contract.estimated_runtime(r.contract.min_procs, machine_.speed_factor);
    const double span = std::min(runtime, to - from);
    if (span > 0.0) proc_seconds += r.contract.min_procs * span;
  }
  const double capacity = static_cast<double>(machine_.total_procs) * (to - from);
  return std::min(1.0, proc_seconds / capacity);
}

const job::Job* ClusterManager::find_job(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

std::vector<const job::Job*> ClusterManager::running_jobs() const {
  std::vector<const job::Job*> out;
  out.reserve(running_.size());
  for (JobId id : running_) out.push_back(jobs_.at(id).get());
  return out;
}

std::vector<const job::Job*> ClusterManager::queued_jobs() const {
  std::vector<const job::Job*> out;
  out.reserve(queued_.size());
  for (JobId id : queued_) out.push_back(jobs_.at(id).get());
  return out;
}

}  // namespace faucets::cluster
