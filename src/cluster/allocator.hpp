// Processor allocation within a Compute Server.
//
// §4.1 notes that shrunk jobs should keep locality and a new job should get
// a contiguous set of processors. The ContiguousAllocator models that
// constraint; the experiments compare it against unconstrained allocation
// (fragmentation ablation in DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace faucets::cluster {

/// Half-open processor interval [begin, end).
struct ProcRange {
  int begin = 0;
  int end = 0;
  [[nodiscard]] int size() const noexcept { return end - begin; }
  friend bool operator==(const ProcRange&, const ProcRange&) = default;
};

/// First-fit contiguous allocator over a fixed set of processors. Free
/// ranges are kept sorted and coalesced.
class ContiguousAllocator {
 public:
  explicit ContiguousAllocator(int total_procs);

  /// Allocate `n` contiguous processors (first fit). nullopt if no hole of
  /// that size exists, even when total free >= n — that gap is external
  /// fragmentation inside the machine.
  [[nodiscard]] std::optional<ProcRange> allocate(int n);

  /// Allocate `n` processors from possibly multiple holes (non-contiguous
  /// fallback). Empty result only when free_count() < n.
  [[nodiscard]] std::vector<ProcRange> allocate_scattered(int n);

  /// Return a range previously handed out. Coalesces with neighbours.
  void release(ProcRange range);

  [[nodiscard]] int total_procs() const noexcept { return total_; }
  [[nodiscard]] int free_count() const noexcept;
  [[nodiscard]] int busy_count() const noexcept { return total_ - free_count(); }
  [[nodiscard]] int largest_free_block() const noexcept;

  /// 0 when all free processors are one block; approaches 1 as the free
  /// space shatters. 0 when nothing is free.
  [[nodiscard]] double fragmentation() const noexcept;

  [[nodiscard]] const std::vector<ProcRange>& free_ranges() const noexcept {
    return free_;
  }

  /// Consistency check for tests: ranges sorted, disjoint, within bounds.
  [[nodiscard]] bool invariants_hold() const noexcept;

 private:
  int total_;
  std::vector<ProcRange> free_;  // sorted by begin, coalesced
};

}  // namespace faucets::cluster
