// Static description of a Compute Server's hardware and hosted software.
// This is the information the Faucets Central Server's directory stores for
// filtering (§2, §5.1): processor count, memory, CPU type/speed, and the
// exported "Known Applications".
#pragma once

#include <string>

#include "src/qos/contract.hpp"
#include "src/qos/resources.hpp"

namespace faucets::cluster {

struct MachineSpec {
  std::string name = "cluster";
  int total_procs = 64;
  double memory_per_proc_mb = 2048.0;

  /// Relative CPU speed; 1.0 is the reference machine the contract's work
  /// figure assumes. A 1.5 machine finishes the same work 1.5x faster.
  double speed_factor = 1.0;

  /// Normalized cost per CPU-second; a bid multiplier scales this (§5.2:
  /// "the bid is converted to Dollar amount by multiplying the CPU-seconds
  /// needed for the job with a normalized cost and the multiplier").
  double cost_per_cpu_second = 0.0008;

  /// Software the server exports: OS, registered applications, libraries.
  qos::SoftwareEnvironment provides{.application = "",
                                    .operating_system = "linux",
                                    .libraries = {"charm++", "ampi", "mpi"}};

  /// Static-filter check (§5.1): can this machine ever run the contract?
  [[nodiscard]] bool can_ever_run(const qos::QosContract& contract) const {
    if (contract.min_procs > total_procs) return false;
    if (contract.resources.memory_per_proc_mb > memory_per_proc_mb) return false;
    return contract.environment.satisfied_by(provides);
  }
};

}  // namespace faucets::cluster
