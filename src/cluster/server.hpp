// ClusterManager: the "Adaptive Queueing System aka Scheduler aka Cluster
// Manager (CM)" of the paper's component list (§2). It owns the jobs on one
// Compute Server, consults a pluggable scheduling strategy, and drives job
// progress through the discrete-event engine.
//
// The CM is usable standalone (scheduler experiments E1-E4) and behind a
// FaucetsDaemon in the full market (E5-E8). Every lifecycle transition is
// emitted as a typed trace event and mirrored into queue/run spans, so one
// job's history is queryable from ctx.spans() without string parsing.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/cluster/machine.hpp"
#include "src/job/job.hpp"
#include "src/sched/metrics.hpp"
#include "src/sched/scheduler.hpp"
#include "src/sim/context.hpp"
#include "src/sim/engine.hpp"
#include "src/util/ids.hpp"

namespace faucets::cluster {

class ClusterManager {
 public:
  ClusterManager(sim::SimContext& ctx, MachineSpec machine,
                 std::unique_ptr<sched::Strategy> strategy,
                 job::AdaptiveCosts costs = {}, ClusterId id = ClusterId{0});

  ClusterManager(const ClusterManager&) = delete;
  ClusterManager& operator=(const ClusterManager&) = delete;

  // --- submission ---------------------------------------------------------
  /// Non-committing admission query; backs bid generation. The CM queries
  /// its database of running/scheduled jobs to decide (§2).
  [[nodiscard]] sched::AdmissionDecision query(const qos::QosContract& contract) const;

  /// Submit a job now. Returns its id if admitted, nullopt if refused.
  /// `parent` (when valid) is the causal span the queue span hangs off —
  /// the daemon passes the client's award span so the whole submit → bid →
  /// award → schedule chain links up.
  std::optional<JobId> submit(UserId owner, const qos::QosContract& contract,
                              SpanId parent = {});

  /// Invoked with every job that completes (the daemon uses this to notify
  /// the client and AppSpector).
  void set_completion_callback(std::function<void(const job::Job&)> cb) {
    on_complete_ = std::move(cb);
  }

  // --- two-phase award reservations (§5.2 deferred commit) -----------------
  /// Reserve capacity for a winning bid: admission is checked now and the
  /// contract is held until `lease_until` (absolute sim time). If no commit
  /// arrives by then the lease expires, the capacity returns to the market,
  /// and the lease-expired callback fires. Reserved work is visible to
  /// projected_utilization so subsequent bids price the held capacity in.
  [[nodiscard]] std::optional<ReservationId> reserve(const qos::QosContract& contract,
                                                     double lease_until);

  /// Turn a reservation into a real job. Admission is re-checked (the
  /// machine may have changed since the reserve); on refusal the
  /// reservation is consumed and nullopt returned, so the awarder re-bids.
  std::optional<JobId> commit_reservation(ReservationId id, UserId owner,
                                          SpanId parent = {});

  /// Abort a reservation (client gave up, or the award went elsewhere).
  /// Returns false when the id is unknown or already expired. Idempotent.
  bool release_reservation(ReservationId id);

  /// Drop every outstanding lease (daemon crash/shutdown path).
  void release_all_reservations();

  [[nodiscard]] std::size_t active_reservations() const noexcept {
    return reservations_.size();
  }

  /// Fires when a lease expires without a commit (the daemon uses this to
  /// forget the associated bid bookkeeping).
  void set_lease_expired_callback(std::function<void(ReservationId)> cb) {
    on_lease_expired_ = std::move(cb);
  }

  // --- checkpoint / eviction (§3, §4.1) ------------------------------------
  /// What survives an eviction: enough to resubmit the job elsewhere.
  struct Evicted {
    JobId job;
    UserId owner;
    qos::QosContract contract;
    double completed_work = 0.0;  // processor-seconds already done
  };

  /// Checkpoint one job and remove it from this Compute Server. Returns
  /// nullopt if the job is unknown or already finished.
  std::optional<Evicted> evict_job(JobId id);

  /// Drain the machine: checkpoint every running job and drop the queue.
  /// Used when a Compute Server is taken down (§3: "when the machine is
  /// about to be taken down, checkpointing the job and moving it to
  /// another machine").
  std::vector<Evicted> evict_all();

  /// Hard failure: every live job is lost with no checkpoint and no
  /// callback. The machine stops executing (its event timer is cancelled).
  void halt();

  // --- state for bidding and monitoring ------------------------------------
  [[nodiscard]] const MachineSpec& machine() const noexcept { return machine_; }
  [[nodiscard]] ClusterId id() const noexcept { return id_; }
  [[nodiscard]] int busy_procs() const noexcept;
  [[nodiscard]] std::size_t running_count() const noexcept { return running_.size(); }
  [[nodiscard]] std::size_t queued_count() const noexcept { return queued_.size(); }

  /// Fraction of capacity committed on average between `from` and `to`,
  /// projected from the current jobs — the signal the paper's
  /// utilization-interpolated bid generator consumes (§5.2).
  [[nodiscard]] double projected_utilization(double from, double to) const;

  [[nodiscard]] const job::Job* find_job(JobId id) const;
  [[nodiscard]] std::vector<const job::Job*> running_jobs() const;
  [[nodiscard]] std::vector<const job::Job*> queued_jobs() const;

  [[nodiscard]] sched::MetricsCollector& metrics() noexcept { return metrics_; }
  [[nodiscard]] const sched::MetricsCollector& metrics() const noexcept { return metrics_; }

  /// Close the metrics window (call once when the experiment ends).
  void finish_metrics() { metrics_.finish(engine_->now()); }

  [[nodiscard]] const sched::Strategy& strategy() const noexcept { return *strategy_; }

 private:
  /// The open queue/run spans of one live job.
  struct JobSpans {
    SpanId queue;
    SpanId run;
  };

  /// One outstanding capacity lease of the two-phase award.
  struct Reservation {
    qos::QosContract contract;
    double until = 0.0;
    sim::EventHandle expiry;
  };

  void expire_reservation(ReservationId id);

  void reschedule();
  void apply_allocations(const std::vector<sched::Allocation>& allocations);
  void arm_completion_timer();
  void handle_completions();
  [[nodiscard]] sched::SchedulerContext context() const;
  void advance_all();

  void emit(obs::TraceEventKind kind, JobId job, UserId user, int procs);
  void observe_busy(double now, int busy);
  /// Close whichever of the job's spans is open and append a terminal
  /// instant of `kind` under it.
  void close_job_spans(JobId id, obs::SpanKind kind, double now);

  sim::SimContext* ctx_;
  sim::Engine* engine_;
  MachineSpec machine_;
  std::unique_ptr<sched::Strategy> strategy_;
  job::AdaptiveCosts costs_;
  ClusterId id_;

  IdGenerator<JobId> job_ids_;
  std::unordered_map<JobId, std::unique_ptr<job::Job>> jobs_;
  std::vector<JobId> running_;  // submit order
  std::vector<JobId> queued_;   // submit order
  std::unordered_map<JobId, JobSpans> job_spans_;
  sched::MetricsCollector metrics_;
  sim::EventHandle completion_timer_;
  std::function<void(const job::Job&)> on_complete_;
  IdGenerator<ReservationId> reservation_ids_;
  std::unordered_map<ReservationId, Reservation> reservations_;
  std::function<void(ReservationId)> on_lease_expired_;
  bool rescheduling_ = false;

  // Registry instruments (labelled with this cluster's machine name),
  // resolved once at construction.
  obs::Counter* completed_ctr_;
  obs::Counter* rejected_ctr_;
  obs::Gauge* busy_gauge_;
  obs::Histogram* wait_hist_;
  obs::Histogram* slowdown_hist_;
  obs::Histogram* occupancy_hist_;
};

}  // namespace faucets::cluster
