#include "src/cluster/gantt.hpp"

#include <algorithm>
#include <stdexcept>

namespace faucets::cluster {

GanttChart::GanttChart(int capacity) : capacity_(capacity) {
  if (capacity <= 0) throw std::invalid_argument("GanttChart capacity must be > 0");
}

void GanttChart::reserve(double start, double end, int procs) {
  if (end <= start || procs <= 0) return;
  deltas_[start] += procs;
  deltas_[end] -= procs;
  if (deltas_[start] == 0) deltas_.erase(start);
  if (auto it = deltas_.find(end); it != deltas_.end() && it->second == 0) {
    deltas_.erase(it);
  }
}

void GanttChart::release(double start, double end, int procs) {
  if (end <= start || procs <= 0) return;
  deltas_[start] -= procs;
  deltas_[end] += procs;
  if (deltas_[start] == 0) deltas_.erase(start);
  if (auto it = deltas_.find(end); it != deltas_.end() && it->second == 0) {
    deltas_.erase(it);
  }
}

int GanttChart::committed_at(double t) const {
  int level = baseline_;
  for (const auto& [time, delta] : deltas_) {
    if (time > t) break;
    level += delta;
  }
  return level;
}

int GanttChart::peak_committed(double from, double to) const {
  int level = committed_at(from);
  int peak = level;
  for (const auto& [time, delta] : deltas_) {
    if (time <= from) continue;
    if (time >= to) break;
    level += delta;
    peak = std::max(peak, level);
  }
  return peak;
}

double GanttChart::average_committed(double from, double to) const {
  if (to <= from) return static_cast<double>(committed_at(from));
  double area = 0.0;
  double cursor = from;
  int level = committed_at(from);
  for (const auto& [time, delta] : deltas_) {
    if (time <= from) continue;
    if (time >= to) break;
    area += level * (time - cursor);
    cursor = time;
    level += delta;
  }
  area += level * (to - cursor);
  return area / (to - from);
}

double GanttChart::earliest_fit(double after, double duration, int procs,
                                double horizon) const {
  if (procs > capacity_) return horizon;
  if (duration < 0.0) duration = 0.0;

  // Single sweep over the level profile: O(events). `candidate` is the
  // earliest possible start given everything seen so far; a segment whose
  // level exceeds the limit pushes it to the segment's end; once a feasible
  // stretch of at least `duration` follows `candidate`, it wins.
  const int limit = capacity_ - procs;
  double candidate = after;
  int level = baseline_;
  for (const auto& [time, delta] : deltas_) {
    if (time > candidate) {
      if (level > limit) {
        candidate = time;  // blocked until this boundary
        if (candidate >= horizon) return horizon;
      } else if (candidate + duration <= time) {
        return candidate;  // whole window fits before the next change
      }
    }
    level += delta;
  }
  // Tail segment: level holds forever after the last event.
  if (level > limit) return horizon;
  return candidate < horizon ? candidate : horizon;
}

void GanttChart::compact(double t) {
  auto it = deltas_.begin();
  while (it != deltas_.end() && it->first <= t) {
    baseline_ += it->second;
    it = deltas_.erase(it);
  }
}

}  // namespace faucets::cluster
