#include "src/cluster/gantt.hpp"

#include <algorithm>
#include <stdexcept>

namespace faucets::cluster {

GanttChart::GanttChart(int capacity) : capacity_(capacity) {
  if (capacity <= 0) throw std::invalid_argument("GanttChart capacity must be > 0");
}

void GanttChart::reserve(double start, double end, int procs) {
  if (end <= start || procs <= 0) return;
  deltas_[start] += procs;
  deltas_[end] -= procs;
  if (deltas_[start] == 0) deltas_.erase(start);
  if (auto it = deltas_.find(end); it != deltas_.end() && it->second == 0) {
    deltas_.erase(it);
  }
  invalidate();
}

void GanttChart::release(double start, double end, int procs) {
  if (end <= start || procs <= 0) return;
  deltas_[start] -= procs;
  deltas_[end] += procs;
  if (deltas_[start] == 0) deltas_.erase(start);
  if (auto it = deltas_.find(end); it != deltas_.end() && it->second == 0) {
    deltas_.erase(it);
  }
  invalidate();
}

void GanttChart::rebuild_profile() const {
  profile_.clear();
  profile_.reserve(deltas_.size());
  int level = baseline_;
  int prev_level = baseline_;
  double prev_time = 0.0;
  double area = 0.0;
  for (const auto& [time, delta] : deltas_) {
    if (!profile_.empty()) area += static_cast<double>(prev_level) * (time - prev_time);
    level += delta;
    profile_.push_back(ProfilePoint{time, level, area});
    prev_level = level;
    prev_time = time;
  }
  profile_valid_ = true;
}

std::ptrdiff_t GanttChart::floor_index(double t) const {
  const auto& prof = profile();
  auto it = std::upper_bound(
      prof.begin(), prof.end(), t,
      [](double value, const ProfilePoint& p) { return value < p.time; });
  return (it - prof.begin()) - 1;
}

int GanttChart::committed_at(double t) const {
  const std::ptrdiff_t i = floor_index(t);
  return i < 0 ? baseline_ : profile()[static_cast<std::size_t>(i)].level;
}

int GanttChart::peak_committed(double from, double to) const {
  const auto& prof = profile();
  int peak = committed_at(from);
  // Profile points strictly inside (from, to) raise the level.
  auto it = std::upper_bound(
      prof.begin(), prof.end(), from,
      [](double value, const ProfilePoint& p) { return value < p.time; });
  for (; it != prof.end() && it->time < to; ++it) peak = std::max(peak, it->level);
  return peak;
}

double GanttChart::average_committed(double from, double to) const {
  if (to <= from) return static_cast<double>(committed_at(from));
  const auto& prof = profile();
  if (prof.empty()) return static_cast<double>(baseline_);

  // Integral of the level from the first profile point's time up to t,
  // using the memoized prefix areas. Requires t >= prof.front().time.
  auto integral_to = [&](double t) {
    const std::ptrdiff_t i = floor_index(t);
    const ProfilePoint& p = prof[static_cast<std::size_t>(i)];
    return p.area + static_cast<double>(p.level) * (t - p.time);
  };

  const double start = prof.front().time;
  double area = 0.0;
  if (from < start) area += static_cast<double>(baseline_) * (std::min(to, start) - from);
  if (to > start) {
    const double lo = std::max(from, start);
    area += integral_to(to) - integral_to(lo);
  }
  return area / (to - from);
}

double GanttChart::earliest_fit(double after, double duration, int procs,
                                double horizon) const {
  if (procs > capacity_) return horizon;
  if (duration < 0.0) duration = 0.0;

  // Single sweep over the memoized profile: O(events). `candidate` is the
  // earliest possible start given everything seen so far; a segment whose
  // level exceeds the limit pushes it to the segment's end; once a feasible
  // stretch of at least `duration` follows `candidate`, it wins.
  const int limit = capacity_ - procs;
  const auto& prof = profile();
  double candidate = after;
  // Points at or before `after` only establish the starting level; skip to
  // them via the memoized profile instead of sweeping from the beginning.
  const std::ptrdiff_t start = floor_index(after);
  int level = start < 0 ? baseline_ : prof[static_cast<std::size_t>(start)].level;
  for (std::size_t j = static_cast<std::size_t>(start + 1); j < prof.size(); ++j) {
    const ProfilePoint& p = prof[j];
    if (p.time > candidate) {
      if (level > limit) {
        candidate = p.time;  // blocked until this boundary
        if (candidate >= horizon) return horizon;
      } else if (candidate + duration <= p.time) {
        return candidate;  // whole window fits before the next change
      }
    }
    level = p.level;
  }
  // Tail segment: level holds forever after the last event.
  if (level > limit) return horizon;
  return candidate < horizon ? candidate : horizon;
}

void GanttChart::compact(double t) {
  auto it = deltas_.begin();
  bool changed = false;
  while (it != deltas_.end() && it->first <= t) {
    baseline_ += it->second;
    it = deltas_.erase(it);
    changed = true;
  }
  if (changed) invalidate();
}

}  // namespace faucets::cluster
