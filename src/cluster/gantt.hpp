// Processor-time Gantt chart.
//
// §4.1: "The strategy must find time windows for the job in its
// processor-time Gantt chart before the job's deadline." This profile
// tracks committed processors over future time; the payoff scheduler uses
// it for admission, backfill uses it for reservations, and bid generators
// use its average to project utilization up to a deadline (§5.2).
//
// Mutations (reserve/release/compact) edit a delta map; queries run against
// a memoized step profile with prefix integrals, rebuilt lazily after a
// mutation. Bid generation issues many queries per mutation (one
// average_committed + earliest_fit per request-for-bids), so queries are
// O(log n) between mutations instead of a linear rescan each time.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace faucets::cluster {

class GanttChart {
 public:
  explicit GanttChart(int capacity);

  /// Commit `procs` processors over [start, end).
  void reserve(double start, double end, int procs);

  /// Undo a prior reserve with identical arguments.
  void release(double start, double end, int procs);

  /// Processors committed at time t.
  [[nodiscard]] int committed_at(double t) const;

  /// Peak commitment over [from, to).
  [[nodiscard]] int peak_committed(double from, double to) const;

  /// Time-weighted average commitment over [from, to).
  [[nodiscard]] double average_committed(double from, double to) const;

  /// Earliest start >= `after` such that `procs` extra processors are free
  /// for the whole window [start, start + duration). Searches event
  /// boundaries up to `horizon`; returns `horizon` if none fits (callers
  /// treat that as "cannot schedule").
  [[nodiscard]] double earliest_fit(double after, double duration, int procs,
                                    double horizon) const;

  [[nodiscard]] int capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return deltas_.empty(); }

  /// Drop events at or before `t` (they can no longer affect queries),
  /// folding them into the baseline. Keeps long simulations O(live events).
  void compact(double t);

 private:
  /// One step of the memoized commitment profile. `level` is the commitment
  /// from `time` until the next point; `area` is the integral of the level
  /// from the first point's time up to `time`.
  struct ProfilePoint {
    double time;
    int level;
    double area;
  };

  void invalidate() noexcept { profile_valid_ = false; }
  void rebuild_profile() const;
  [[nodiscard]] const std::vector<ProfilePoint>& profile() const {
    if (!profile_valid_) rebuild_profile();
    return profile_;
  }
  /// Index of the last profile point with time <= t, or -1 if t precedes
  /// every point.
  [[nodiscard]] std::ptrdiff_t floor_index(double t) const;

  int capacity_;
  int baseline_ = 0;              // commitment carried from compacted past
  std::map<double, int> deltas_;  // time -> change in committed procs
  mutable std::vector<ProfilePoint> profile_;  // memoized; rebuilt on demand
  mutable bool profile_valid_ = false;
};

}  // namespace faucets::cluster
