// Payoff functions: how much the client pays as a function of completion
// time (§2.1, §4.1 of the paper).
//
// The experimental QoS feature the paper describes is a payoff with a soft
// and a hard deadline: full payoff up to the soft deadline, linear
// interpolation between the soft- and hard-deadline payoffs, and a penalty
// after the hard deadline ("a steep post-deadline dropoff").
#pragma once

namespace faucets::qos {

class PayoffFunction {
 public:
  /// A zero payoff function (free job, no deadline pressure).
  PayoffFunction() = default;

  /// Flat payoff: the client pays `amount` whenever the job completes.
  static PayoffFunction flat(double amount);

  /// The paper's soft/hard deadline shape. Requires soft <= hard.
  /// `payoff_soft` is earned at or before the soft deadline, dropping
  /// linearly to `payoff_hard` at the hard deadline; after the hard
  /// deadline the provider owes `penalty` (payoff = -penalty).
  static PayoffFunction deadline(double soft_deadline, double hard_deadline,
                                 double payoff_soft, double payoff_hard,
                                 double penalty = 0.0);

  /// Payoff earned if the job completes at absolute time `completion`.
  [[nodiscard]] double value_at(double completion) const noexcept;

  [[nodiscard]] bool has_deadline() const noexcept { return has_deadline_; }
  [[nodiscard]] double soft_deadline() const noexcept { return soft_deadline_; }
  [[nodiscard]] double hard_deadline() const noexcept { return hard_deadline_; }
  [[nodiscard]] double max_payoff() const noexcept { return payoff_soft_; }
  [[nodiscard]] double penalty() const noexcept { return penalty_; }

  /// Shift both deadlines by `delta` seconds (used when a job is re-issued
  /// relative to a new submission time).
  [[nodiscard]] PayoffFunction shifted(double delta) const noexcept;

 private:
  bool has_deadline_ = false;
  double soft_deadline_ = 0.0;
  double hard_deadline_ = 0.0;
  double payoff_soft_ = 0.0;
  double payoff_hard_ = 0.0;
  double penalty_ = 0.0;
};

}  // namespace faucets::qos
