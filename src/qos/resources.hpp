// Resource requirements and software environment descriptors, the
// machine-facing half of the QoS contract (§2.1 of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace faucets::qos {

/// Software environment a job needs: executable name, host OS, and required
/// libraries/compilers. Compute Servers advertise what they support; the
/// Central Server filters on it (§5.1).
struct SoftwareEnvironment {
  std::string application;          // registered application name, e.g. "namd"
  std::string operating_system;     // e.g. "linux"
  std::vector<std::string> libraries;  // e.g. {"charm++", "fftw"}

  /// True if `host` provides everything this environment needs.
  [[nodiscard]] bool satisfied_by(const SoftwareEnvironment& host) const;
};

/// Hardware-side requirements beyond processor count.
struct ResourceRequirements {
  double memory_per_proc_mb = 0.0;  // resident set per processor
  double total_memory_mb = 0.0;     // aggregate footprint (0 = derive from per-proc)
  double disk_mb = 0.0;             // scratch space during the run
  double input_mb = 0.0;            // staged in before the run
  double output_mb = 0.0;           // staged out after the run

  [[nodiscard]] double total_memory_for(int procs) const noexcept {
    const double derived = memory_per_proc_mb * procs;
    return total_memory_mb > 0.0 ? total_memory_mb : derived;
  }
};

inline bool SoftwareEnvironment::satisfied_by(const SoftwareEnvironment& host) const {
  if (!application.empty() && !host.application.empty() && application != host.application) {
    return false;
  }
  if (!operating_system.empty() && !host.operating_system.empty() &&
      operating_system != host.operating_system) {
    return false;
  }
  for (const auto& lib : libraries) {
    bool found = false;
    for (const auto& have : host.libraries) {
      if (lib == have) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace faucets::qos
