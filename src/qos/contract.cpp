#include "src/qos/contract.hpp"

#include <algorithm>

namespace faucets::qos {

double QosContract::estimated_runtime(int procs, double speed_factor) const {
  if (speed_factor <= 0.0) return EfficiencyModel::kNever;
  return efficiency.time_to_complete(total_work() / speed_factor, procs);
}

bool QosContract::valid() const noexcept {
  if (min_procs < 1 || max_procs < min_procs) return false;
  if (total_work() <= 0.0) return false;
  if (efficiency.min_procs() != min_procs || efficiency.max_procs() != max_procs) {
    return false;
  }
  for (const auto& phase : phases) {
    if (phase.work <= 0.0) return false;
  }
  return true;
}

double QosContract::total_work() const noexcept {
  if (phases.empty()) return work;
  double sum = 0.0;
  for (const auto& phase : phases) sum += phase.work;
  return sum;
}

QosContract QosContract::reduced_by(double completed) const {
  QosContract out = *this;
  if (completed <= 0.0) return out;
  if (out.phases.empty()) {
    // Keep a sliver of work so the contract stays valid even if the
    // checkpoint covered everything (the restart still has to run).
    out.work = std::max(out.work - completed, 1e-6);
    return out;
  }
  std::vector<Phase> rest;
  for (const auto& phase : out.phases) {
    if (completed >= phase.work) {
      completed -= phase.work;
      continue;
    }
    Phase reduced = phase;
    reduced.work -= completed;
    completed = 0.0;
    rest.push_back(std::move(reduced));
  }
  if (rest.empty()) {
    Phase sliver = out.phases.back();
    sliver.work = 1e-6;
    rest.push_back(std::move(sliver));
  }
  out.phases = std::move(rest);
  return out;
}

QosContract make_contract(int min_procs, int max_procs, double work, double eff_min,
                          double eff_max, PayoffFunction payoff) {
  QosContract c;
  c.min_procs = min_procs;
  c.max_procs = max_procs;
  c.work = work;
  c.efficiency = EfficiencyModel{min_procs, max_procs, eff_min, eff_max};
  c.payoff = payoff;
  return c;
}

}  // namespace faucets::qos
