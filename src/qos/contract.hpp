// The quality-of-service contract (§2.1): everything a client tells the grid
// about a job when requesting bids.
#pragma once

#include <string>
#include <vector>

#include "src/qos/payoff.hpp"
#include "src/qos/resources.hpp"
#include "src/qos/speedup.hpp"

namespace faucets::qos {

/// A phase of a phase-structured application (§2.1 end): distinct resource
/// behaviour that lasts long enough to justify re-evaluating placement.
struct Phase {
  std::string name;
  double work = 0.0;  // processor-seconds at perfect efficiency
  EfficiencyModel efficiency;
  ResourceRequirements resources;
};

/// The full contract. `work` is in processor-seconds at perfect efficiency;
/// the paper's machine-independent formulation (FLOP count / machine speed /
/// parallel efficiency) reduces to this once the server's speed factor is
/// applied.
struct QosContract {
  // --- software and hardware requirements -------------------------------
  SoftwareEnvironment environment;
  ResourceRequirements resources;

  // --- malleability range and behaviour over it -------------------------
  int min_procs = 1;
  int max_procs = 1;
  EfficiencyModel efficiency;  // efficiency over [min_procs, max_procs]

  // --- how much computation ----------------------------------------------
  double work = 0.0;  // processor-seconds at efficiency 1 on a speed-1 machine

  /// Estimated wall-clock time if run on `procs` processors of a machine
  /// with the given speed factor (1.0 = reference machine).
  [[nodiscard]] double estimated_runtime(int procs, double speed_factor = 1.0) const;

  // --- economics ---------------------------------------------------------
  PayoffFunction payoff;

  /// Intranet mode (§5.5.4): priority assigned by management. Higher wins;
  /// 0 is the default class. Ignored by the market strategies.
  int priority = 0;

  /// Validation: true when the contract is internally consistent
  /// (min <= max, positive work, efficiency range matches proc range).
  [[nodiscard]] bool valid() const noexcept;

  /// True if the job is malleable (can usefully change its allocation).
  [[nodiscard]] bool adaptive() const noexcept { return max_procs > min_procs; }

  // --- optional phase structure -----------------------------------------
  std::vector<Phase> phases;

  /// Sum of per-phase work when phases are present, else `work`.
  [[nodiscard]] double total_work() const noexcept;

  /// The contract left after `completed` processor-seconds have already
  /// been executed (checkpoint/migration, §4.1): work shrinks, phases are
  /// consumed front to back, deadlines and payoff stay absolute.
  [[nodiscard]] QosContract reduced_by(double completed) const;
};

/// Convenience factory for the common case: a malleable job with linear
/// efficiency interpolation and a deadline payoff.
[[nodiscard]] QosContract make_contract(int min_procs, int max_procs, double work,
                                        double eff_min = 1.0, double eff_max = 1.0,
                                        PayoffFunction payoff = {});

}  // namespace faucets::qos
