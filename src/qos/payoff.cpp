#include "src/qos/payoff.hpp"

#include <algorithm>

namespace faucets::qos {

PayoffFunction PayoffFunction::flat(double amount) {
  PayoffFunction f;
  f.payoff_soft_ = amount;
  f.payoff_hard_ = amount;
  return f;
}

PayoffFunction PayoffFunction::deadline(double soft_deadline, double hard_deadline,
                                        double payoff_soft, double payoff_hard,
                                        double penalty) {
  PayoffFunction f;
  f.has_deadline_ = true;
  f.soft_deadline_ = soft_deadline;
  f.hard_deadline_ = std::max(soft_deadline, hard_deadline);
  f.payoff_soft_ = payoff_soft;
  f.payoff_hard_ = payoff_hard;
  f.penalty_ = penalty;
  return f;
}

double PayoffFunction::value_at(double completion) const noexcept {
  if (!has_deadline_) return payoff_soft_;
  if (completion <= soft_deadline_) return payoff_soft_;
  if (completion > hard_deadline_) return -penalty_;
  if (completion == hard_deadline_) return payoff_hard_;
  const double span = hard_deadline_ - soft_deadline_;
  const double t = (completion - soft_deadline_) / span;
  return payoff_soft_ + t * (payoff_hard_ - payoff_soft_);
}

PayoffFunction PayoffFunction::shifted(double delta) const noexcept {
  PayoffFunction f = *this;
  if (f.has_deadline_) {
    f.soft_deadline_ += delta;
    f.hard_deadline_ += delta;
  }
  return f;
}

}  // namespace faucets::qos
