// Parallel efficiency model of an adaptive job.
//
// The QoS contract (§2.1) lets the user state the job's efficiency at the
// minimum and maximum processor counts, with linear interpolation in
// between. Work is measured in processor-seconds at perfect efficiency, so
// the job's execution rate on p processors is p * eff(p) work-units per
// second.
#pragma once

#include <algorithm>

namespace faucets::qos {

class EfficiencyModel {
 public:
  /// By default a job is perfectly scalable within its range.
  EfficiencyModel() = default;

  /// `eff_min`/`eff_max` are the parallel efficiencies at `min_procs` and
  /// `max_procs` respectively, each in (0, 1].
  EfficiencyModel(int min_procs, int max_procs, double eff_min, double eff_max);

  /// Parallel efficiency at `procs`, linearly interpolated and clamped to
  /// the contract range.
  [[nodiscard]] double efficiency(int procs) const noexcept;

  /// Useful work completed per second on `procs` processors.
  [[nodiscard]] double rate(int procs) const noexcept {
    return procs <= 0 ? 0.0 : static_cast<double>(procs) * efficiency(procs);
  }

  /// Wall-clock seconds to finish `work` processor-seconds on `procs`.
  [[nodiscard]] double time_to_complete(double work, int procs) const noexcept {
    const double r = rate(procs);
    return r <= 0.0 ? kNever : work / r;
  }

  /// Effective speedup over one processor at contract efficiency.
  [[nodiscard]] double speedup(int procs) const noexcept { return rate(procs); }

  [[nodiscard]] int min_procs() const noexcept { return min_procs_; }
  [[nodiscard]] int max_procs() const noexcept { return max_procs_; }
  [[nodiscard]] double eff_at_min() const noexcept { return eff_min_; }
  [[nodiscard]] double eff_at_max() const noexcept { return eff_max_; }

  static constexpr double kNever = 1e300;

 private:
  int min_procs_ = 1;
  int max_procs_ = 1;
  double eff_min_ = 1.0;
  double eff_max_ = 1.0;
};

}  // namespace faucets::qos
