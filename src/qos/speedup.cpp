#include "src/qos/speedup.hpp"

namespace faucets::qos {

EfficiencyModel::EfficiencyModel(int min_procs, int max_procs, double eff_min,
                                 double eff_max)
    : min_procs_(std::max(1, min_procs)),
      max_procs_(std::max(std::max(1, min_procs), max_procs)),
      eff_min_(std::clamp(eff_min, 1e-9, 1.0)),
      eff_max_(std::clamp(eff_max, 1e-9, 1.0)) {}

double EfficiencyModel::efficiency(int procs) const noexcept {
  const int p = std::clamp(procs, min_procs_, max_procs_);
  if (max_procs_ == min_procs_) return eff_min_;
  const double t = static_cast<double>(p - min_procs_) /
                   static_cast<double>(max_procs_ - min_procs_);
  return eff_min_ + t * (eff_max_ - eff_min_);
}

}  // namespace faucets::qos
