#include "src/job/swf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace faucets::job {

namespace {

// SWF field indices (0-based) per the Parallel Workloads Archive spec.
constexpr std::size_t kSubmitTime = 1;
constexpr std::size_t kRunTime = 3;
constexpr std::size_t kAllocatedProcs = 4;
constexpr std::size_t kRequestedProcs = 7;
constexpr std::size_t kRequestedTime = 8;
constexpr std::size_t kUserId = 11;
constexpr std::size_t kFieldCount = 18;

}  // namespace

SwfStreamSource::SwfStreamSource(std::istream& in, SwfOptions options)
    : in_(&in),
      opt_(options),
      seeds_(options.seed),
      clones_(std::max<std::size_t>(1, options.user_multiplier) *
              std::max<std::size_t>(1, options.cluster_multiplier)) {
  if (opt_.time_compression <= 0.0) {
    throw std::invalid_argument("swf: time_compression must be positive");
  }
  line_.reserve(512);
  window_.reserve(std::max<std::size_t>(opt_.read_ahead, clones_));
}

SwfStreamSource::SwfStreamSource(std::unique_ptr<std::istream> owned,
                                 SwfOptions options)
    : SwfStreamSource(*owned, options) {
  owned_ = std::move(owned);
}

std::unique_ptr<SwfStreamSource> SwfStreamSource::open(const std::string& path,
                                                       SwfOptions options) {
  auto file = std::make_unique<std::ifstream>(path);
  if (!file->is_open()) {
    throw std::invalid_argument("swf: cannot open trace file '" + path + "'");
  }
  return std::unique_ptr<SwfStreamSource>(
      new SwfStreamSource(std::move(file), options));
}

void SwfStreamSource::push_item(Item item) {
  window_.push_back(std::move(item));
  const auto is_later = [](const Item& a, const Item& b) {
    if (a.req.submit_time != b.req.submit_time) {
      return a.req.submit_time > b.req.submit_time;
    }
    return a.order > b.order;
  };
  std::push_heap(window_.begin(), window_.end(), is_later);
  high_water_ = std::max(high_water_, window_.size());
}

SwfStreamSource::Item SwfStreamSource::pop_item() {
  const auto is_later = [](const Item& a, const Item& b) {
    if (a.req.submit_time != b.req.submit_time) {
      return a.req.submit_time > b.req.submit_time;
    }
    return a.order > b.order;
  };
  std::pop_heap(window_.begin(), window_.end(), is_later);
  Item out = std::move(window_.back());
  window_.pop_back();
  return out;
}

void SwfStreamSource::push_clones(double submit, double runtime, int procs,
                                  std::size_t user) {
  const std::size_t line_key = parsed_lines_++;
  for (std::size_t k = 0; k < clones_; ++k) {
    // One RNG per (record, clone), derived from the seed alone: adding
    // clones or capping max_jobs never moves an existing clone's draws, so
    // scaled replays stay CRN-paired with the raw trace (clone 0).
    Rng rng(seeds_.at(line_key, k));
    double t = submit;
    if (k > 0) t += rng.uniform(0.0, opt_.clone_jitter);

    int p = procs;
    if (opt_.shaping.procs_cap > 0) p = std::min(p, opt_.shaping.procs_cap);
    const double work = static_cast<double>(p) * runtime;

    int min_procs = p;
    int max_procs = p;
    if (opt_.shaping.malleability > 0.0) {
      min_procs = std::max(1, static_cast<int>(std::floor(
                                  p / (1.0 + opt_.shaping.malleability))));
      max_procs = std::max(
          min_procs,
          static_cast<int>(std::ceil(p * (1.0 + opt_.shaping.malleability))));
      if (opt_.shaping.procs_cap > 0) {
        max_procs = std::min(max_procs, opt_.shaping.procs_cap);
        min_procs = std::min(min_procs, max_procs);
      }
    }

    Item item;
    item.req.submit_time = t;
    item.req.contract = qos::make_contract(min_procs, max_procs, work, 0.95, 0.8);
    apply_shaping(opt_.shaping, t,
                  item.req.contract.estimated_runtime(max_procs), work, rng,
                  item.req.contract);
    item.req.user_index = user * clones_ + k;
    item.req.home_cluster =
        item.req.user_index % std::max<std::size_t>(1, opt_.cluster_count);
    item.order =
        static_cast<std::uint64_t>(line_key) * clones_ + k;
    push_item(std::move(item));
  }
}

bool SwfStreamSource::read_line() {
  if (!std::getline(*in_, line_)) return false;
  ++line_number_;

  // Parse up to 18 whitespace-separated numeric fields, stopping at a ';'
  // comment. Short lines are legal: missing trailing fields read as the
  // SWF's -1 "unknown" sentinel. A non-numeric token is a hard error.
  double fields[kFieldCount];
  for (auto& f : fields) f = -1.0;
  std::size_t count = 0;
  const char* p = line_.c_str();
  while (*p != '\0' && *p != ';' && count < kFieldCount) {
    while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
    if (*p == '\0' || *p == ';') break;
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p || (*end != '\0' && *end != ' ' && *end != '\t' &&
                     *end != '\r' && *end != ';')) {
      throw std::invalid_argument("swf line " + std::to_string(line_number_) +
                                  ": cannot parse field " +
                                  std::to_string(count + 1) + " near '" +
                                  std::string(p, std::min<std::size_t>(
                                                     16, std::strlen(p))) +
                                  "'");
    }
    fields[count++] = v;
    p = end;
  }
  if (count == 0) return true;  // blank or pure comment

  const double submit_raw = fields[kSubmitTime];
  // Prefer the request over the allocation (the request is what a user
  // would submit to the grid); fall back per SWF's -1 convention.
  double procs = fields[kRequestedProcs];
  if (procs <= 0.0) procs = fields[kAllocatedProcs];
  double runtime = fields[kRequestedTime];
  if (runtime <= 0.0) runtime = fields[kRunTime];
  if (procs <= 0.0 || runtime <= 0.0 || submit_raw < 0.0) {
    ++skipped_;  // unusable record
    return true;
  }

  double submit = submit_raw / opt_.time_compression;
  if (submit < raw_last_ - opt_.sort_window) {
    // Disordered beyond the tolerated window: pull the record forward so
    // the emitted stream stays sorted, and count the repair.
    submit = std::max(raw_last_ - opt_.sort_window, last_emitted_);
    ++clamped_;
  }
  raw_last_ = std::max(raw_last_, submit);

  const double user_field = fields[kUserId];
  const std::size_t user =
      user_field > 0.0 ? static_cast<std::size_t>(user_field) : 0;
  push_clones(submit, runtime, static_cast<int>(std::lround(procs)), user);
  return true;
}

void SwfStreamSource::pump() {
  if (finished_) return;
  while (!input_done_ &&
         (window_.empty() ||
          top().req.submit_time > raw_last_ - opt_.sort_window)) {
    if (!read_line()) input_done_ = true;
  }
  if (window_.empty() && input_done_) finished_ = true;
}

void SwfStreamSource::finish() {
  window_.clear();
  input_done_ = true;
  finished_ = true;
}

double SwfStreamSource::peek_next_submit_time() {
  pump();
  return finished_ ? kNoMoreJobs : top().req.submit_time;
}

JobRequest SwfStreamSource::next() {
  pump();
  Item item = pop_item();
  if (item.req.submit_time < last_emitted_) {
    item.req.submit_time = last_emitted_;
    ++clamped_;
  } else {
    last_emitted_ = item.req.submit_time;
  }
  ++emitted_;
  if (opt_.max_jobs > 0 && emitted_ >= opt_.max_jobs) finish();
  if (window_.empty() && input_done_) finished_ = true;
  return std::move(item.req);
}

bool SwfStreamSource::exhausted() {
  pump();
  return finished_;
}

std::vector<JobRequest> load_swf(std::istream& in, const SwfOptions& options) {
  SwfStreamSource source(in, options);
  return collect(source);
}

std::vector<JobRequest> load_swf_string(const std::string& text,
                                        const SwfOptions& options) {
  std::istringstream stream{text};
  return load_swf(stream, options);
}

}  // namespace faucets::job
