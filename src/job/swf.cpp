#include "src/job/swf.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace faucets::job {

namespace {

// SWF field indices (0-based) per the Parallel Workloads Archive spec.
constexpr std::size_t kSubmitTime = 1;
constexpr std::size_t kRunTime = 3;
constexpr std::size_t kAllocatedProcs = 4;
constexpr std::size_t kRequestedProcs = 7;
constexpr std::size_t kRequestedTime = 8;
constexpr std::size_t kUserId = 11;
constexpr std::size_t kFieldCount = 18;

}  // namespace

std::vector<JobRequest> load_swf(std::istream& in, const SwfOptions& options) {
  std::vector<JobRequest> out;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto comment = line.find(';');
    if (comment != std::string::npos) line.erase(comment);

    std::istringstream fields{line};
    std::vector<double> value;
    double v = 0.0;
    while (fields >> v) value.push_back(v);
    if (value.empty()) continue;  // blank or pure comment
    if (value.size() < kFieldCount) {
      throw std::invalid_argument("swf line " + std::to_string(line_number) +
                                  ": expected 18 fields, got " +
                                  std::to_string(value.size()));
    }

    const double submit = value[kSubmitTime];
    // Prefer the request over the allocation (the request is what a user
    // would submit to the grid); fall back per SWF's -1 convention.
    double procs = value[kRequestedProcs];
    if (procs <= 0.0) procs = value[kAllocatedProcs];
    double runtime = value[kRequestedTime];
    if (runtime <= 0.0) runtime = value[kRunTime];
    if (procs <= 0.0 || runtime <= 0.0 || submit < 0.0) continue;  // unusable

    int p = static_cast<int>(std::lround(procs));
    if (options.procs_cap > 0) p = std::min(p, options.procs_cap);
    const double work = static_cast<double>(p) * runtime;

    int min_procs = p;
    int max_procs = p;
    if (options.malleability > 0.0) {
      min_procs = std::max(1, static_cast<int>(std::floor(
                                  p / (1.0 + options.malleability))));
      max_procs = std::max(min_procs, static_cast<int>(std::ceil(
                                          p * (1.0 + options.malleability))));
      if (options.procs_cap > 0) {
        max_procs = std::min(max_procs, options.procs_cap);
        min_procs = std::min(min_procs, max_procs);
      }
    }

    JobRequest req;
    req.submit_time = submit;
    req.contract = qos::make_contract(min_procs, max_procs, work, 0.95, 0.8);
    const double payoff = options.price_per_work * work;
    if (options.deadline_tightness > 0.0) {
      const double soft = submit + runtime * options.deadline_tightness;
      const double hard = submit + runtime * options.deadline_tightness *
                                       options.hard_stretch;
      req.contract.payoff =
          qos::PayoffFunction::deadline(soft, hard, payoff, payoff * 0.5,
                                        payoff * 0.25);
    } else {
      req.contract.payoff = qos::PayoffFunction::flat(payoff);
    }

    const double user = value[kUserId];
    req.user_index = user > 0.0 ? static_cast<std::size_t>(user) : 0;
    req.home_cluster =
        req.user_index % std::max<std::size_t>(1, options.cluster_count);
    out.push_back(std::move(req));

    if (options.max_jobs > 0 && out.size() >= options.max_jobs) break;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const JobRequest& a, const JobRequest& b) {
                     return a.submit_time < b.submit_time;
                   });
  return out;
}

std::vector<JobRequest> load_swf_string(const std::string& text,
                                        const SwfOptions& options) {
  std::istringstream stream{text};
  return load_swf(stream, options);
}

}  // namespace faucets::job
