// Standard Workload Format (SWF) trace replay.
//
// §5.4 runs the simulation "over patterns of job submissions under study";
// besides the synthetic generator, real supercomputer logs in the
// community-standard SWF (one line per job, 18 whitespace-separated
// fields, ';' comments — the Parallel Workloads Archive format) can be
// replayed. SWF jobs are rigid; JobShaping optionally widens each job into
// a malleable range and attaches deadline payoffs so the adaptive and
// market machinery has something to work with.
//
// SwfStreamSource is the streaming backend (DESIGN.md §13): it parses one
// line at a time off disk — no O(jobs) preload — holding only a small
// reorder window of upcoming requests, and scales a trace to production
// volume with time compression and deterministic user cloning.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "src/job/shaping.hpp"
#include "src/job/source.hpp"
#include "src/job/workload.hpp"
#include "src/util/rng.hpp"

namespace faucets::job {

struct SwfOptions {
  /// Stop after this many emitted jobs, counted after user multiplication
  /// (0 = all).
  std::size_t max_jobs = 0;

  /// Number of home clusters to spread users over.
  std::size_t cluster_count = 1;

  /// Malleability / deadline / payoff widening, shared with the synthetic
  /// generator (src/job/shaping.hpp). Trace defaults keep jobs rigid with
  /// flat payoffs of price_per_work * work.
  JobShaping shaping = trace_default_shaping();

  // --- scale knobs (DESIGN.md §13) ----------------------------------------

  /// Divide every submit time by this factor: replay a month of arrivals
  /// in a month/N of simulated time. Runtimes are untouched, so the
  /// offered load scales up by the same factor.
  double time_compression = 1.0;

  /// Clone every trace user into this many independent users, each with
  /// its own id and arrival jitter. user_multiplier scales the user
  /// population; cluster_multiplier replays the whole trace again as if
  /// that many peer clusters contributed the same (jittered) stream. Both
  /// multiply the job volume; clone 0 reproduces the raw trace exactly, so
  /// scaled runs stay CRN-paired with unscaled ones.
  std::size_t user_multiplier = 1;
  std::size_t cluster_multiplier = 1;

  /// Clones' arrivals are delayed by U[0, clone_jitter) seconds (applied
  /// after time compression), drawn per (line, clone) from `seed` via
  /// SeedSequence — independent of the multiplier count, so adding clones
  /// never moves an existing clone's draw.
  double clone_jitter = 60.0;

  /// Tolerated out-of-order raw submit times, seconds (after compression).
  /// The source holds a job back until the parser has read past its time
  /// plus this window; a raw line arriving later than that is clamped to
  /// the last emitted time (and counted). PWA traces are sorted, so the
  /// default is 0.
  double sort_window = 0.0;

  /// Seed for the per-job shaping and jitter draws.
  std::uint64_t seed = 42;

  /// Reserve this many reorder-window slots up front so the steady-state
  /// next() path does not allocate.
  std::size_t read_ahead = 4096;
};

/// Pull-based streaming SWF reader. Skips comment/empty lines and jobs
/// with missing size or runtime (negative fields per the SWF convention);
/// short lines are tolerated — missing trailing fields read as the SWF's
/// -1 "unknown" sentinel. Throws std::invalid_argument with the line
/// number on garbage tokens.
class SwfStreamSource final : public WorkloadSource {
 public:
  /// Stream from `in`, which must outlive the source.
  SwfStreamSource(std::istream& in, SwfOptions options = {});

  /// Open `path` and stream from it. Throws std::invalid_argument when the
  /// file cannot be opened.
  [[nodiscard]] static std::unique_ptr<SwfStreamSource> open(
      const std::string& path, SwfOptions options = {});

  [[nodiscard]] double peek_next_submit_time() override;
  [[nodiscard]] JobRequest next() override;
  [[nodiscard]] bool exhausted() override;

  // --- robustness / scale counters ----------------------------------------
  [[nodiscard]] std::size_t lines_read() const noexcept { return line_number_; }
  [[nodiscard]] std::size_t jobs_emitted() const noexcept { return emitted_; }
  /// Unusable records skipped (no processors, no runtime, negative submit).
  [[nodiscard]] std::size_t jobs_skipped() const noexcept { return skipped_; }
  /// Emissions clamped forward because a raw line was out of order by more
  /// than sort_window.
  [[nodiscard]] std::size_t clamped() const noexcept { return clamped_; }
  /// Largest reorder-window occupancy seen (the streaming memory bound).
  [[nodiscard]] std::size_t window_high_water() const noexcept {
    return high_water_;
  }

 private:
  struct Item {
    JobRequest req;
    std::uint64_t order = 0;  // (line, clone) emission rank for stable ties
  };

  SwfStreamSource(std::unique_ptr<std::istream> owned, SwfOptions options);

  /// Read raw lines until the window's earliest request is safe to emit
  /// (no future line can precede it) or the input ends.
  void pump();
  /// Parse one line; push its clones into the window. False at EOF.
  bool read_line();
  void push_clones(double submit, double runtime, int procs, std::size_t user);
  void finish(); // max_jobs reached or input drained: drop the window

  [[nodiscard]] const Item& top() const { return window_.front(); }
  void push_item(Item item);
  [[nodiscard]] Item pop_item();

  std::unique_ptr<std::istream> owned_;
  std::istream* in_;
  SwfOptions opt_;
  SeedSequence seeds_;
  std::size_t clones_;  // user_multiplier * cluster_multiplier

  std::string line_;
  std::vector<Item> window_;  // min-heap on (submit_time, order)
  std::size_t line_number_ = 0;
  std::size_t parsed_lines_ = 0;  // usable job records parsed (clone seed key)
  double raw_last_ = -1e300;      // last parsed submit, post-compression
  double last_emitted_ = -1e300;
  bool input_done_ = false;
  bool finished_ = false;
  std::size_t emitted_ = 0;
  std::size_t skipped_ = 0;
  std::size_t clamped_ = 0;
  std::size_t high_water_ = 0;
};

/// Preload compatibility wrapper: drain a SwfStreamSource into a vector.
[[nodiscard]] std::vector<JobRequest> load_swf(std::istream& in,
                                               const SwfOptions& options = {});

[[nodiscard]] std::vector<JobRequest> load_swf_string(const std::string& text,
                                                      const SwfOptions& options = {});

}  // namespace faucets::job
