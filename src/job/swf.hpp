// Standard Workload Format (SWF) reader.
//
// §5.4 runs the simulation "over patterns of job submissions under study";
// besides the synthetic generator, real supercomputer logs in the
// community-standard SWF (one line per job, 18 whitespace-separated
// fields, ';' comments — the Parallel Workloads Archive format) can be
// replayed. SWF jobs are rigid; the options below optionally widen each
// job into a malleable range and attach deadline payoffs so the adaptive
// and market machinery has something to work with.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/job/workload.hpp"

namespace faucets::job {

struct SwfOptions {
  /// Stop after this many jobs (0 = all).
  std::size_t max_jobs = 0;

  /// Widen each job's processor request into a malleable range:
  /// min = procs / (1 + malleability), max = procs * (1 + malleability).
  /// 0 keeps jobs rigid, as recorded.
  double malleability = 0.0;

  /// Attach a deadline payoff: soft deadline = submit + runtime *
  /// tightness (0 = flat payoff of price * work).
  double deadline_tightness = 0.0;
  double hard_stretch = 2.0;

  /// Dollar value per processor-second of work.
  double price_per_work = 0.001;

  /// Clamp processor requests (e.g. to the largest machine). 0 = no clamp.
  int procs_cap = 0;

  /// Number of home clusters to spread users over.
  std::size_t cluster_count = 1;
};

/// Parse an SWF stream. Skips comment/empty lines and jobs with missing
/// size or runtime (negative fields per the SWF convention). Throws
/// std::invalid_argument on structurally malformed lines.
[[nodiscard]] std::vector<JobRequest> load_swf(std::istream& in,
                                               const SwfOptions& options = {});

[[nodiscard]] std::vector<JobRequest> load_swf_string(const std::string& text,
                                                      const SwfOptions& options = {});

}  // namespace faucets::job
