#include "src/job/workload.hpp"

#include <algorithm>
#include <cmath>

namespace faucets::job {

WorkloadGenerator::WorkloadGenerator(WorkloadParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

double WorkloadGenerator::mean_work(const WorkloadParams& params) noexcept {
  // Mean of lognormal(mu, sigma) = exp(mu + sigma^2 / 2).
  return std::exp(params.work_log_mu +
                  params.work_log_sigma * params.work_log_sigma / 2.0);
}

void WorkloadGenerator::calibrate_load(WorkloadParams& params, double load,
                                       int total_procs) {
  const double mw = mean_work(params);
  params.mean_interarrival = mw / (load * static_cast<double>(total_procs));
}

JobRequest WorkloadGenerator::next() {
  t_ += rng_.exponential(params_.mean_interarrival);
  ++emitted_;

  JobRequest req;
  req.submit_time = t_;
  req.user_index = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(params_.user_count) - 1));
  req.home_cluster = req.user_index % std::max<std::size_t>(1, params_.cluster_count);

  const double work = rng_.lognormal(params_.work_log_mu, params_.work_log_sigma);
  const int min_procs = static_cast<int>(
      rng_.uniform_int(params_.min_procs_lo, params_.min_procs_hi));
  int max_procs = min_procs;
  if (!rng_.bernoulli(params_.rigid_fraction)) {
    const double expansion = rng_.uniform(params_.expansion_lo, params_.expansion_hi);
    max_procs = static_cast<int>(std::lround(min_procs * expansion));
  }
  if (params_.shaping.procs_cap > 0) {
    max_procs = std::min(max_procs, params_.shaping.procs_cap);
  }
  max_procs = std::max(max_procs, min_procs);

  const double eff_min = rng_.uniform(params_.eff_min_lo, params_.eff_min_hi);
  const double eff_max = rng_.uniform(params_.eff_max_lo, params_.eff_max_hi);

  qos::QosContract c = qos::make_contract(min_procs, max_procs, work,
                                          eff_min, std::min(eff_min, eff_max));
  c.resources.memory_per_proc_mb =
      rng_.uniform(params_.mem_per_proc_lo, params_.mem_per_proc_hi);
  c.environment.operating_system = "linux";

  apply_shaping(params_.shaping, t_, c.estimated_runtime(max_procs), work,
                rng_, c);

  req.contract = std::move(c);
  return req;
}

std::vector<JobRequest> WorkloadGenerator::generate() {
  std::vector<JobRequest> out;
  out.reserve(params_.job_count - std::min(emitted_, params_.job_count));
  while (!exhausted()) out.push_back(next());
  return out;
}

std::vector<JobRequest> fragmentation_scenario(double gap_seconds) {
  std::vector<JobRequest> out;

  // Job B: long, unimportant, currently sized at 500 but malleable 400..1000.
  JobRequest b;
  b.submit_time = 0.0;
  // Eight hours of work at 500 processors and efficiency ~1.
  b.contract = qos::make_contract(400, 1000, 500.0 * 8.0 * 3600.0, 0.98, 0.90);
  b.contract.payoff = qos::PayoffFunction::flat(10.0);
  out.push_back(b);

  // Job A: urgent and important, needs exactly 600 processors.
  JobRequest a;
  a.submit_time = gap_seconds;
  a.contract = qos::make_contract(600, 600, 600.0 * 1800.0, 0.95, 0.95);
  const double soft = gap_seconds + 2400.0;  // wants to finish within 40 min
  a.contract.payoff = qos::PayoffFunction::deadline(soft, soft + 1200.0,
                                                    1000.0, 400.0, 100.0);
  out.push_back(a);

  return out;
}

}  // namespace faucets::job
