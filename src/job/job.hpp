// Job model: state machine plus the adaptive-job runtime mechanics
// (shrink/expand with reconfiguration cost) described in §4 of the paper.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/qos/contract.hpp"
#include "src/util/ids.hpp"

namespace faucets::job {

enum class JobState {
  kCreated,     // constructed, not yet submitted
  kBidding,     // request-for-bids in flight
  kAwarded,     // a Compute Server accepted it
  kQueued,      // in the server's queue, no processors yet
  kRunning,     // progressing on >= min_procs processors
  kCheckpointed,  // stopped with state saved; can restart (possibly elsewhere)
  kCompleted,
  kRejected,    // no acceptable bid / admission refused
  kFailed,
};

[[nodiscard]] std::string_view to_string(JobState state) noexcept;

/// One allocation interval, recorded for Gantt output and tests.
struct AllocationRecord {
  double start = 0.0;
  double end = 0.0;  // kOpen while current
  int procs = 0;
  static constexpr double kOpen = -1.0;
};

/// Runtime costs of malleability. The paper notes shrink/expand and
/// checkpoint/restart overheads must be justified by phases lasting minutes.
struct AdaptiveCosts {
  double reconfig_seconds = 1.0;    // wall-clock stall on shrink/expand
  double checkpoint_seconds = 30.0; // stall to write a checkpoint
  double restart_seconds = 30.0;    // stall to restart from a checkpoint
};

/// A job instance inside the simulation. Work accounting: `remaining_work`
/// is in processor-seconds at perfect efficiency on a speed-1 machine;
/// progress between events is rate(procs) * speed * elapsed.
class Job {
 public:
  Job(JobId id, UserId owner, qos::QosContract contract, double submit_time);

  [[nodiscard]] JobId id() const noexcept { return id_; }
  [[nodiscard]] UserId owner() const noexcept { return owner_; }
  [[nodiscard]] const qos::QosContract& contract() const noexcept { return contract_; }
  [[nodiscard]] JobState state() const noexcept { return state_; }
  [[nodiscard]] double submit_time() const noexcept { return submit_time_; }
  [[nodiscard]] double start_time() const noexcept { return start_time_; }
  [[nodiscard]] double finish_time() const noexcept { return finish_time_; }
  [[nodiscard]] int procs() const noexcept { return procs_; }
  [[nodiscard]] double remaining_work() const noexcept { return remaining_work_; }
  [[nodiscard]] double total_work() const noexcept { return contract_.total_work(); }
  [[nodiscard]] const std::vector<AllocationRecord>& history() const noexcept {
    return history_;
  }
  [[nodiscard]] int reconfig_count() const noexcept { return reconfig_count_; }

  // --- lifecycle transitions (validated; misuse is a logic error) --------
  void mark_bidding();
  void mark_awarded();
  void mark_queued();
  void mark_rejected();
  void mark_failed(double time);

  /// Start running on `procs` processors of a machine with `speed_factor`.
  void start(double time, int procs, double speed_factor,
             const AdaptiveCosts& costs = {});

  /// Account progress up to `time` with the current allocation.
  void advance_to(double time);

  /// Change allocation at `time` (shrink or expand). Applies the
  /// reconfiguration stall. New allocation may be 0 (vacate to queue).
  void reallocate(double time, int new_procs);

  /// Checkpoint at `time`: progress is retained, processors released.
  void checkpoint(double time);

  /// Restart from checkpoint at `time` on a machine with `speed_factor`.
  void restart(double time, int procs, double speed_factor);

  /// Credit `amount` of already-completed work (processor-seconds), e.g.
  /// when this Job object is reconstructed from a checkpoint shipped from
  /// another Compute Server. Consumes phases front to back.
  void skip_work(double amount) noexcept;

  /// Mark completion at `time`. Remaining work must be ~0.
  void complete(double time);

  /// Absolute time at which the job finishes if the current allocation
  /// persists. Returns +infinity when it holds no processors.
  [[nodiscard]] double projected_finish(double now) const noexcept;

  /// Wall-clock needed to finish `remaining_work` on `procs` of this
  /// machine, including a pending reconfiguration stall if procs differs
  /// from the current allocation.
  [[nodiscard]] double time_to_finish_on(int procs) const noexcept;

  /// Fraction of total work done as of `now`, including progress earned
  /// since the last bookkeeping event (what AppSpector displays).
  [[nodiscard]] double progress_at(double now) const noexcept;

  // --- phase structure (§2.1) ---------------------------------------------
  /// True when the contract declares phases; execution then follows each
  /// phase's own efficiency model in order.
  [[nodiscard]] bool phased() const noexcept { return !phase_remaining_.empty(); }
  /// Index of the phase currently executing (0 for single-phase jobs).
  [[nodiscard]] std::size_t current_phase() const noexcept { return phase_; }
  /// Work left in the current phase.
  [[nodiscard]] double phase_remaining() const noexcept {
    return phased() ? phase_remaining_[phase_] : remaining_work_;
  }
  /// Next scheduling-relevant instant at the current allocation: the end of
  /// the current phase (when the scheduler should re-evaluate — the paper
  /// notes performance parameters shift between phases) or completion.
  [[nodiscard]] double next_event_time(double now) const noexcept;

  // --- derived metrics ----------------------------------------------------
  [[nodiscard]] double response_time() const noexcept { return finish_time_ - submit_time_; }
  [[nodiscard]] double wait_time() const noexcept { return start_time_ - submit_time_; }
  /// Bounded slowdown with the conventional 10 s threshold.
  [[nodiscard]] double bounded_slowdown() const noexcept;
  /// Payoff actually earned given the recorded finish time.
  [[nodiscard]] double earned_payoff() const noexcept;

 private:
  void transition(JobState next);
  void close_history(double time);

  /// Rate (work per second) of phase `phase` on `procs` of this machine.
  [[nodiscard]] double rate_for(std::size_t phase, int procs) const noexcept;
  /// Simulate execution of the phased copies from the last bookkeeping
  /// point to `now` without mutating the job.
  void phased_state_at(double now, std::vector<double>& rem,
                       std::size_t& phase) const noexcept;

  JobId id_;
  UserId owner_;
  qos::QosContract contract_;
  JobState state_ = JobState::kCreated;

  double submit_time_ = 0.0;
  double start_time_ = -1.0;
  double finish_time_ = -1.0;

  int procs_ = 0;
  double speed_factor_ = 1.0;
  double remaining_work_ = 0.0;
  double stall_until_ = 0.0;  // reconfig/restart stall: no progress before this
  double last_update_ = 0.0;
  AdaptiveCosts costs_;
  int reconfig_count_ = 0;
  std::vector<AllocationRecord> history_;
  std::size_t phase_ = 0;
  std::vector<double> phase_remaining_;  // empty = no phase structure
};

}  // namespace faucets::job
