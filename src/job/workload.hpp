// Synthetic workload generation: the job-submission patterns over which the
// paper's simulation system (§5.4) runs its experiments.
#pragma once

#include <vector>

#include "src/job/shaping.hpp"
#include "src/qos/contract.hpp"
#include "src/util/rng.hpp"

namespace faucets::job {

/// A job waiting to be submitted: contract plus submission metadata.
struct JobRequest {
  double submit_time = 0.0;
  qos::QosContract contract;
  std::size_t user_index = 0;     // which synthetic user submits it
  std::size_t home_cluster = 0;   // the user's Home Cluster (§5.5.3)
};

/// Tunable parameters of the generator. Defaults produce a moderately loaded
/// malleable workload resembling supercomputer trace studies: Poisson
/// arrivals, lognormal work, power-of-two-ish processor ranges.
struct WorkloadParams {
  std::size_t job_count = 200;

  // Arrivals: exponential inter-arrival with this mean (seconds).
  double mean_interarrival = 120.0;

  // Work per job (processor-seconds at perfect efficiency): lognormal.
  double work_log_mu = 9.5;     // median ~ 13,360 proc-s
  double work_log_sigma = 1.0;

  // Malleability: min_procs uniform in [min_procs_lo, min_procs_hi];
  // max_procs = min_procs * expansion chosen uniformly in
  // [expansion_lo, expansion_hi]. Set rigid_fraction > 0 for a mix of
  // traditional jobs (max = min). (The generator draws its own expansion;
  // shaping.malleability is the trace backends' widening knob.)
  int min_procs_lo = 4;
  int min_procs_hi = 32;
  double expansion_lo = 2.0;
  double expansion_hi = 8.0;
  double rigid_fraction = 0.0;

  // Efficiency at the ends of the range.
  double eff_min_lo = 0.85, eff_min_hi = 1.0;   // at min_procs
  double eff_max_lo = 0.55, eff_max_hi = 0.9;   // at max_procs

  // Deadline / payoff widening and the max_procs clamp, shared with every
  // other workload backend (see src/job/shaping.hpp).
  JobShaping shaping;

  // Population for market experiments.
  std::size_t user_count = 16;
  std::size_t cluster_count = 1;

  // Memory footprint per processor (MB), uniform.
  double mem_per_proc_lo = 256.0;
  double mem_per_proc_hi = 2048.0;
};

/// Deterministic generator: the same seed and params always yield the same
/// request stream. Jobs are produced one at a time in submit order (arrival
/// times are a monotone exponential walk), so the generator streams without
/// ever materializing the full workload.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadParams params, std::uint64_t seed = 42);

  /// Generate the remaining stream, sorted by submit time.
  [[nodiscard]] std::vector<JobRequest> generate();

  /// Generate the next job (valid while !exhausted()).
  [[nodiscard]] JobRequest next();
  [[nodiscard]] bool exhausted() const noexcept {
    return emitted_ >= params_.job_count;
  }

  /// Scale `mean_interarrival` so the stream offers `load` (fraction of
  /// capacity) to a machine with `total_procs` processors, given the mean
  /// work implied by the parameters. load = mean_work / (interarrival *
  /// total_procs).
  static void calibrate_load(WorkloadParams& params, double load, int total_procs);

  /// Mean work per job implied by the lognormal parameters.
  [[nodiscard]] static double mean_work(const WorkloadParams& params) noexcept;

 private:
  WorkloadParams params_;
  Rng rng_;
  double t_ = 0.0;
  std::size_t emitted_ = 0;
};

/// The exact internal-fragmentation scenario from §1 of the paper: a
/// 1000-processor machine, a long unimportant job B occupying 500
/// processors (malleable 400..1000), and an urgent job A needing 600.
/// Returns {B, A} with A submitted `gap_seconds` after B.
[[nodiscard]] std::vector<JobRequest> fragmentation_scenario(double gap_seconds = 600.0);

}  // namespace faucets::job
