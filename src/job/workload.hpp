// Synthetic workload generation: the job-submission patterns over which the
// paper's simulation system (§5.4) runs its experiments.
#pragma once

#include <vector>

#include "src/qos/contract.hpp"
#include "src/util/rng.hpp"

namespace faucets::job {

/// A job waiting to be submitted: contract plus submission metadata.
struct JobRequest {
  double submit_time = 0.0;
  qos::QosContract contract;
  std::size_t user_index = 0;     // which synthetic user submits it
  std::size_t home_cluster = 0;   // the user's Home Cluster (§5.5.3)
};

/// Tunable parameters of the generator. Defaults produce a moderately loaded
/// malleable workload resembling supercomputer trace studies: Poisson
/// arrivals, lognormal work, power-of-two-ish processor ranges.
struct WorkloadParams {
  std::size_t job_count = 200;

  // Arrivals: exponential inter-arrival with this mean (seconds).
  double mean_interarrival = 120.0;

  // Work per job (processor-seconds at perfect efficiency): lognormal.
  double work_log_mu = 9.5;     // median ~ 13,360 proc-s
  double work_log_sigma = 1.0;

  // Malleability: min_procs uniform in [min_procs_lo, min_procs_hi];
  // max_procs = min_procs * expansion chosen uniformly in
  // [expansion_lo, expansion_hi]. Set rigid_fraction > 0 for a mix of
  // traditional jobs (max = min).
  int min_procs_lo = 4;
  int min_procs_hi = 32;
  double expansion_lo = 2.0;
  double expansion_hi = 8.0;
  double rigid_fraction = 0.0;
  int procs_cap = 1 << 20;  // clamp max_procs (e.g. to machine size)

  // Efficiency at the ends of the range.
  double eff_min_lo = 0.85, eff_min_hi = 1.0;   // at min_procs
  double eff_max_lo = 0.55, eff_max_hi = 0.9;   // at max_procs

  // Deadlines: soft deadline = submit + runtime_at_max * tightness where
  // tightness ~ U[tightness_lo, tightness_hi]; hard deadline = soft *
  // hard_stretch. deadline_fraction of jobs carry deadlines at all.
  double deadline_fraction = 1.0;
  double tightness_lo = 1.5;
  double tightness_hi = 6.0;
  double hard_stretch = 2.0;

  // Economics: payoff = price_per_work * work * premium where premium ~
  // U[premium_lo, premium_hi]; tighter deadlines pay more (premium is
  // divided by tightness). Post-hard-deadline penalty as a fraction of the
  // payoff.
  double price_per_work = 0.001;
  double premium_lo = 0.8;
  double premium_hi = 2.5;
  double penalty_fraction = 0.25;

  // Population for market experiments.
  std::size_t user_count = 16;
  std::size_t cluster_count = 1;

  // Memory footprint per processor (MB), uniform.
  double mem_per_proc_lo = 256.0;
  double mem_per_proc_hi = 2048.0;
};

/// Deterministic generator: the same seed and params always yield the same
/// request stream.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadParams params, std::uint64_t seed = 42);

  /// Generate the full stream, sorted by submit time.
  [[nodiscard]] std::vector<JobRequest> generate();

  /// Scale `mean_interarrival` so the stream offers `load` (fraction of
  /// capacity) to a machine with `total_procs` processors, given the mean
  /// work implied by the parameters. load = mean_work / (interarrival *
  /// total_procs).
  static void calibrate_load(WorkloadParams& params, double load, int total_procs);

  /// Mean work per job implied by the lognormal parameters.
  [[nodiscard]] static double mean_work(const WorkloadParams& params) noexcept;

 private:
  WorkloadParams params_;
  Rng rng_;
};

/// The exact internal-fragmentation scenario from §1 of the paper: a
/// 1000-processor machine, a long unimportant job B occupying 500
/// processors (malleable 400..1000), and an urgent job A needing 600.
/// Returns {B, A} with A submitted `gap_seconds` after B.
[[nodiscard]] std::vector<JobRequest> fragmentation_scenario(double gap_seconds = 600.0);

}  // namespace faucets::job
