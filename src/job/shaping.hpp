// JobShaping: the malleability / deadline / payoff widening knobs shared by
// every workload backend.
//
// Both the synthetic generator (workload.hpp) and the SWF trace reader
// (swf.hpp) turn a bare job — processors, runtime, work — into a full
// QosContract the market can price: a malleable processor range, a
// soft/hard deadline payoff (§2.1, §4.1), and a dollar value per unit of
// work. Before this struct the two backends each carried their own copy of
// those knobs and the [workload] and [trace] INI sections drifted; now one
// JobShaping is parsed once and applied uniformly by both.
#pragma once

#include "src/qos/contract.hpp"
#include "src/util/rng.hpp"

namespace faucets::job {

struct JobShaping {
  /// Widen a rigid processor request into a malleable range:
  /// min = procs / (1 + malleability), max = procs * (1 + malleability).
  /// 0 keeps jobs as recorded. (The synthetic generator draws its own
  /// expansion range instead; see WorkloadParams.)
  double malleability = 0.0;

  /// Clamp max_procs (e.g. to the largest machine). 0 = no clamp.
  int procs_cap = 0;

  /// Deadlines: soft deadline = submit + runtime_at_max * tightness where
  /// tightness ~ U[tightness_lo, tightness_hi]; hard deadline stretches the
  /// soft slack by hard_stretch. deadline_fraction of jobs carry deadlines
  /// at all (the rest get a flat payoff).
  double deadline_fraction = 1.0;
  double tightness_lo = 1.5;
  double tightness_hi = 6.0;
  double hard_stretch = 2.0;

  /// Economics: payoff = price_per_work * work * premium where premium ~
  /// U[premium_lo, premium_hi] / sqrt(tightness) — tighter deadlines pay
  /// more. Post-hard-deadline penalty as a fraction of the payoff.
  double price_per_work = 0.001;
  double premium_lo = 0.8;
  double premium_hi = 2.5;
  double penalty_fraction = 0.25;
};

/// Shaping defaults for replayed traces: rigid jobs, flat payoffs
/// (premium 1, no deadline pressure) until a scenario asks for widening.
[[nodiscard]] inline JobShaping trace_default_shaping() {
  JobShaping s;
  s.deadline_fraction = 0.0;
  s.premium_lo = 1.0;
  s.premium_hi = 1.0;
  return s;
}

/// Draw one job's deadline/payoff terms from `rng` and attach them to
/// `contract`. The draw order is fixed — tightness, premium, deadline
/// bernoulli — and every backend routes its per-job stream through this
/// one function, so seeds mean the same thing everywhere.
void apply_shaping(const JobShaping& shaping, double submit_time,
                   double runtime_at_max, double work, Rng& rng,
                   qos::QosContract& contract);

}  // namespace faucets::job
