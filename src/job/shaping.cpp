#include "src/job/shaping.hpp"

#include <cmath>

namespace faucets::job {

void apply_shaping(const JobShaping& shaping, double submit_time,
                   double runtime_at_max, double work, Rng& rng,
                   qos::QosContract& contract) {
  const double tightness = rng.uniform(shaping.tightness_lo, shaping.tightness_hi);
  const double premium =
      rng.uniform(shaping.premium_lo, shaping.premium_hi) / std::sqrt(tightness);
  const double payoff = shaping.price_per_work * work * premium;

  if (rng.bernoulli(shaping.deadline_fraction)) {
    const double soft = submit_time + runtime_at_max * tightness;
    const double hard =
        submit_time + runtime_at_max * tightness * shaping.hard_stretch;
    contract.payoff = qos::PayoffFunction::deadline(
        soft, hard, payoff, payoff * 0.5, payoff * shaping.penalty_fraction);
  } else {
    contract.payoff = qos::PayoffFunction::flat(payoff);
  }
}

}  // namespace faucets::job
