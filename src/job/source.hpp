// WorkloadSource: the pull-based job supply API (DESIGN.md §13).
//
// §5.4 runs the simulation "over patterns of job submissions under study".
// Every pattern — synthetic generator, replayed SWF trace, hand-built
// vector — enters the system through this one interface: the consumer
// peeks the next submit time, arms a timer, and pulls exactly one request
// when it fires. Nothing holds the whole workload in memory; a month-long
// trace streams off disk through a bounded read-ahead window.
//
// Contract:
//  - Sources yield requests in nondecreasing submit_time order.
//  - peek_next_submit_time() returns the next request's submit time, or
//    kNoMoreJobs (+inf) once the source is exhausted. Peeking may read
//    ahead (pump a parser, fill a reorder window) but never skips a job.
//  - next() is only valid while exhausted() is false.
//  - peek/next/exhausted are non-const: lazy sources pump on demand.
#pragma once

#include <cstddef>
#include <deque>
#include <limits>
#include <vector>

#include "src/job/workload.hpp"

namespace faucets::job {

class WorkloadSource {
 public:
  /// peek_next_submit_time()'s "no more jobs" sentinel.
  static constexpr double kNoMoreJobs = std::numeric_limits<double>::infinity();

  virtual ~WorkloadSource() = default;

  [[nodiscard]] virtual double peek_next_submit_time() = 0;
  [[nodiscard]] virtual JobRequest next() = 0;
  [[nodiscard]] virtual bool exhausted() = 0;
};

/// Drain a source into a vector (the preload path: tests, small tools, and
/// the load_swf compatibility wrapper). `max_jobs` = 0 takes everything.
[[nodiscard]] std::vector<JobRequest> collect(WorkloadSource& source,
                                              std::size_t max_jobs = 0);

/// Adapter over an in-memory vector. Kept for tests and small examples;
/// the vector is stably sorted by submit time on construction so callers
/// may hand over requests in any order (as run_workload always allowed).
class VectorSource final : public WorkloadSource {
 public:
  explicit VectorSource(std::vector<JobRequest> requests);

  [[nodiscard]] double peek_next_submit_time() override;
  [[nodiscard]] JobRequest next() override;
  [[nodiscard]] bool exhausted() override;

 private:
  std::vector<JobRequest> requests_;
  std::size_t index_ = 0;
};

/// Streaming view of the synthetic generator: one job is materialized at a
/// time, in exactly the order and with exactly the RNG draws of
/// WorkloadGenerator::generate() — collect(GeneratorSource{p, s}) is
/// byte-for-byte WorkloadGenerator{p, s}.generate().
class GeneratorSource final : public WorkloadSource {
 public:
  explicit GeneratorSource(WorkloadParams params, std::uint64_t seed = 42);

  [[nodiscard]] double peek_next_submit_time() override;
  [[nodiscard]] JobRequest next() override;
  [[nodiscard]] bool exhausted() override;

 private:
  void fill();

  WorkloadGenerator generator_;
  JobRequest slot_;
  bool slot_full_ = false;
};

/// Routes one shared source across the per-user clients: requests go to
/// lane user_index % lanes, each lane is itself a WorkloadSource feeding
/// one client's submission-timer chain.
///
/// Two refill disciplines (DESIGN.md §13):
///  - auto (unsharded): a lane that runs dry pulls the shared source
///    inline. Single-threaded, so the pull is safe anywhere.
///  - manual (sharded): lanes never touch the shared source. The
///    coordinator calls refill(horizon) at every barrier — workers idle —
///    to establish the window invariant: every lane either ends past the
///    horizon (so its client's chain cannot starve mid-window) or has seen
///    the whole source. Lane pops inside a window touch only that lane's
///    own deque.
///
/// Read-ahead is bounded by the lookahead window's arrivals plus routing
/// skew: a user that never submits again forces the demux to buffer other
/// users' jobs while scanning for its next one, so a degenerate
/// single-user trace degrades to O(jobs) buffering (see DESIGN.md §13).
class WorkloadDemux {
 public:
  WorkloadDemux(WorkloadSource& source, std::size_t lanes, bool manual_refill);

  [[nodiscard]] WorkloadSource& lane(std::size_t index) {
    return lanes_[index];
  }
  [[nodiscard]] std::size_t lane_count() const noexcept { return lanes_.size(); }

  /// Ensure every lane is nonempty or the source is exhausted, so clients
  /// can arm their first timer. Call before the run starts (both modes).
  void prime();

  /// Manual mode: pull until every lane's last buffered request is past
  /// `horizon` (or the source is exhausted). Coordinator-only.
  void refill(double horizon);

  [[nodiscard]] bool source_exhausted() const noexcept { return done_; }
  /// Requests currently buffered across all lanes / the run's high-water
  /// mark (maintained on every push and pop; the memory-bound counters
  /// BENCH_replay reports).
  [[nodiscard]] std::size_t buffered() const noexcept { return buffered_count_; }
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

 private:
  class Lane final : public WorkloadSource {
   public:
    [[nodiscard]] double peek_next_submit_time() override;
    [[nodiscard]] JobRequest next() override;
    [[nodiscard]] bool exhausted() override;

   private:
    friend class WorkloadDemux;
    WorkloadDemux* owner_ = nullptr;
    std::deque<JobRequest> buffer_;
    double tail_time_ = -std::numeric_limits<double>::infinity();
  };

  /// Pull one request from the shared source into its lane. False once the
  /// source is exhausted.
  bool pull_one();
  /// Auto mode: pull until `lane` is nonempty or the source is exhausted.
  void pull_for(Lane& lane);

  WorkloadSource* source_;
  bool manual_;
  bool done_ = false;
  std::size_t buffered_count_ = 0;
  std::size_t high_water_ = 0;
  std::vector<Lane> lanes_;
};

}  // namespace faucets::job
