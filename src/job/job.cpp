#include "src/job/job.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace faucets::job {

namespace {
constexpr double kEpsWork = 1e-6;
constexpr double kInf = 1e300;
}  // namespace

std::string_view to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kCreated: return "created";
    case JobState::kBidding: return "bidding";
    case JobState::kAwarded: return "awarded";
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCheckpointed: return "checkpointed";
    case JobState::kCompleted: return "completed";
    case JobState::kRejected: return "rejected";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

Job::Job(JobId id, UserId owner, qos::QosContract contract, double submit_time)
    : id_(id),
      owner_(owner),
      contract_(std::move(contract)),
      submit_time_(submit_time),
      remaining_work_(contract_.total_work()),
      last_update_(submit_time) {
  phase_remaining_.reserve(contract_.phases.size());
  for (const auto& phase : contract_.phases) phase_remaining_.push_back(phase.work);
}

double Job::rate_for(std::size_t phase, int procs) const noexcept {
  const auto& model = phase_remaining_.empty() ? contract_.efficiency
                                               : contract_.phases[phase].efficiency;
  return model.rate(procs) * speed_factor_;
}

void Job::phased_state_at(double now, std::vector<double>& rem,
                          std::size_t& phase) const noexcept {
  rem = phase_remaining_;
  phase = phase_;
  if (state_ != JobState::kRunning || procs_ <= 0) return;
  const double from = std::max(last_update_, stall_until_);
  double dt = now - from;
  while (dt > 0.0 && phase < rem.size()) {
    const double rate = rate_for(phase, procs_);
    if (rate <= 0.0) return;
    const double need = rem[phase] / rate;
    if (need <= dt) {
      dt -= need;
      rem[phase] = 0.0;
      ++phase;
    } else {
      rem[phase] -= rate * dt;
      dt = 0.0;
    }
  }
}

void Job::transition(JobState next) { state_ = next; }

void Job::mark_bidding() { transition(JobState::kBidding); }
void Job::mark_awarded() { transition(JobState::kAwarded); }
void Job::mark_queued() { transition(JobState::kQueued); }

void Job::mark_rejected() { transition(JobState::kRejected); }

void Job::mark_failed(double time) {
  close_history(time);
  procs_ = 0;
  finish_time_ = time;
  transition(JobState::kFailed);
}

void Job::close_history(double time) {
  if (!history_.empty() && history_.back().end == AllocationRecord::kOpen) {
    history_.back().end = time;
  }
}

void Job::start(double time, int procs, double speed_factor,
                const AdaptiveCosts& costs) {
  if (procs < contract_.min_procs) {
    throw std::invalid_argument("Job::start: fewer processors than contract minimum");
  }
  costs_ = costs;
  speed_factor_ = speed_factor;
  procs_ = std::min(procs, contract_.max_procs);
  start_time_ = time;
  last_update_ = time;
  stall_until_ = time;  // no startup stall; staging is modeled by the daemon
  history_.push_back(AllocationRecord{time, AllocationRecord::kOpen, procs_});
  transition(JobState::kRunning);
}

void Job::advance_to(double time) {
  if (state_ != JobState::kRunning || procs_ <= 0) {
    last_update_ = std::max(last_update_, time);
    return;
  }
  const double from = std::max(last_update_, stall_until_);
  if (time > from) {
    if (phased()) {
      phased_state_at(time, phase_remaining_, phase_);
      remaining_work_ = 0.0;
      for (double w : phase_remaining_) remaining_work_ += w;
    } else {
      const double rate = rate_for(0, procs_);
      remaining_work_ = std::max(0.0, remaining_work_ - rate * (time - from));
    }
  }
  last_update_ = std::max(last_update_, time);
}

void Job::reallocate(double time, int new_procs) {
  advance_to(time);
  if (new_procs == procs_) return;
  close_history(time);
  ++reconfig_count_;
  if (new_procs <= 0) {
    procs_ = 0;
    transition(JobState::kQueued);
    return;
  }
  procs_ = std::clamp(new_procs, contract_.min_procs, contract_.max_procs);
  stall_until_ = time + costs_.reconfig_seconds;
  history_.push_back(AllocationRecord{time, AllocationRecord::kOpen, procs_});
  transition(JobState::kRunning);
}

void Job::checkpoint(double time) {
  advance_to(time);
  close_history(time + costs_.checkpoint_seconds);
  procs_ = 0;
  transition(JobState::kCheckpointed);
}

void Job::skip_work(double amount) noexcept {
  amount = std::min(amount, remaining_work_);
  remaining_work_ -= amount;
  for (std::size_t p = phase_; p < phase_remaining_.size() && amount > 0.0; ++p) {
    const double take = std::min(amount, phase_remaining_[p]);
    phase_remaining_[p] -= take;
    amount -= take;
    if (phase_remaining_[p] <= 0.0 && p == phase_) ++phase_;
  }
}

void Job::restart(double time, int procs, double speed_factor) {
  if (state_ != JobState::kCheckpointed) {
    throw std::logic_error("Job::restart: job is not checkpointed");
  }
  speed_factor_ = speed_factor;
  procs_ = std::clamp(procs, contract_.min_procs, contract_.max_procs);
  last_update_ = time;
  stall_until_ = time + costs_.restart_seconds;
  history_.push_back(AllocationRecord{time, AllocationRecord::kOpen, procs_});
  transition(JobState::kRunning);
}

void Job::complete(double time) {
  advance_to(time);
  assert(remaining_work_ <= kEpsWork * std::max(1.0, total_work()));
  remaining_work_ = 0.0;
  close_history(time);
  procs_ = 0;
  finish_time_ = time;
  transition(JobState::kCompleted);
}

double Job::projected_finish(double now) const noexcept {
  if (state_ == JobState::kCompleted) return finish_time_;
  if (procs_ <= 0) return kInf;
  const double effective_start = std::max(now, stall_until_);
  if (phased()) {
    std::vector<double> rem;
    std::size_t phase = 0;
    phased_state_at(effective_start, rem, phase);
    double finish = effective_start;
    for (std::size_t p = phase; p < rem.size(); ++p) {
      const double rate = rate_for(p, procs_);
      if (rate <= 0.0) return kInf;
      finish += rem[p] / rate;
    }
    return finish;
  }
  const double rate = rate_for(0, procs_);
  if (rate <= 0.0) return kInf;
  double work = remaining_work_;
  // Progress already earned between last_update_ and now is not yet
  // subtracted from remaining_work_; account for it here.
  const double from = std::max(last_update_, stall_until_);
  if (now > from) work = std::max(0.0, work - rate * (now - from));
  return effective_start + work / rate;
}

double Job::next_event_time(double now) const noexcept {
  if (!phased()) return projected_finish(now);
  if (state_ == JobState::kCompleted) return finish_time_;
  if (procs_ <= 0) return kInf;
  const double effective_start = std::max(now, stall_until_);
  std::vector<double> rem;
  std::size_t phase = 0;
  phased_state_at(effective_start, rem, phase);
  if (phase >= rem.size()) return effective_start;  // all work done
  const double rate = rate_for(phase, procs_);
  if (rate <= 0.0) return kInf;
  return effective_start + rem[phase] / rate;
}

double Job::time_to_finish_on(int procs) const noexcept {
  if (procs < contract_.min_procs) return kInf;
  const int p = std::min(procs, contract_.max_procs);
  const double stall = (p != procs_ && procs_ > 0) ? costs_.reconfig_seconds : 0.0;
  if (phased()) {
    double total = stall;
    for (std::size_t ph = phase_; ph < phase_remaining_.size(); ++ph) {
      const double rate = rate_for(ph, p);
      if (rate <= 0.0) return kInf;
      total += phase_remaining_[ph] / rate;
    }
    return total;
  }
  const double rate = rate_for(0, p);
  if (rate <= 0.0) return kInf;
  return stall + remaining_work_ / rate;
}

double Job::progress_at(double now) const noexcept {
  const double total = total_work();
  if (total <= 0.0) return 1.0;
  double work = remaining_work_;
  if (state_ == JobState::kRunning && procs_ > 0) {
    if (phased()) {
      std::vector<double> rem;
      std::size_t phase = 0;
      phased_state_at(now, rem, phase);
      work = 0.0;
      for (double w : rem) work += w;
    } else {
      const double rate = rate_for(0, procs_);
      const double from = std::max(last_update_, stall_until_);
      if (now > from) work = std::max(0.0, work - rate * (now - from));
    }
  }
  return 1.0 - work / total;
}

double Job::bounded_slowdown() const noexcept {
  if (finish_time_ < 0.0) return 0.0;
  const double run = std::max(finish_time_ - start_time_, 10.0);
  return std::max(1.0, response_time() / run);
}

double Job::earned_payoff() const noexcept {
  if (state_ != JobState::kCompleted) return 0.0;
  return contract_.payoff.value_at(finish_time_);
}

}  // namespace faucets::job
