#include "src/job/source.hpp"

#include <algorithm>
#include <utility>

namespace faucets::job {

std::vector<JobRequest> collect(WorkloadSource& source, std::size_t max_jobs) {
  std::vector<JobRequest> out;
  while (!source.exhausted()) {
    out.push_back(source.next());
    if (max_jobs > 0 && out.size() >= max_jobs) break;
  }
  return out;
}

// --- VectorSource ----------------------------------------------------------

VectorSource::VectorSource(std::vector<JobRequest> requests)
    : requests_(std::move(requests)) {
  std::stable_sort(requests_.begin(), requests_.end(),
                   [](const JobRequest& a, const JobRequest& b) {
                     return a.submit_time < b.submit_time;
                   });
}

double VectorSource::peek_next_submit_time() {
  return index_ < requests_.size() ? requests_[index_].submit_time : kNoMoreJobs;
}

JobRequest VectorSource::next() { return std::move(requests_[index_++]); }

bool VectorSource::exhausted() { return index_ >= requests_.size(); }

// --- GeneratorSource -------------------------------------------------------

GeneratorSource::GeneratorSource(WorkloadParams params, std::uint64_t seed)
    : generator_(params, seed) {}

void GeneratorSource::fill() {
  if (!slot_full_ && !generator_.exhausted()) {
    slot_ = generator_.next();
    slot_full_ = true;
  }
}

double GeneratorSource::peek_next_submit_time() {
  fill();
  return slot_full_ ? slot_.submit_time : kNoMoreJobs;
}

JobRequest GeneratorSource::next() {
  fill();
  slot_full_ = false;
  return std::move(slot_);
}

bool GeneratorSource::exhausted() {
  fill();
  return !slot_full_;
}

// --- WorkloadDemux ---------------------------------------------------------

WorkloadDemux::WorkloadDemux(WorkloadSource& source, std::size_t lanes,
                             bool manual_refill)
    : source_(&source), manual_(manual_refill) {
  lanes_.resize(std::max<std::size_t>(1, lanes));
  for (auto& lane : lanes_) lane.owner_ = this;
}

bool WorkloadDemux::pull_one() {
  if (done_) return false;
  if (source_->exhausted()) {
    done_ = true;
    return false;
  }
  JobRequest req = source_->next();
  Lane& lane = lanes_[req.user_index % lanes_.size()];
  lane.tail_time_ = req.submit_time;
  lane.buffer_.push_back(std::move(req));
  high_water_ = std::max(high_water_, ++buffered_count_);
  if (source_->exhausted()) done_ = true;
  return true;
}

void WorkloadDemux::pull_for(Lane& lane) {
  while (lane.buffer_.empty() && pull_one()) {
  }
}

void WorkloadDemux::prime() {
  for (auto& lane : lanes_) pull_for(lane);
}

void WorkloadDemux::refill(double horizon) {
  // Window invariant: a lane counts as covered when its last buffered
  // request lies past the horizon — every pop inside the window leaves at
  // least that request behind, so the client's timer chain always finds a
  // next submit time to arm. Lane tails only grow (sources are sorted), so
  // one uncovered counter suffices.
  std::size_t uncovered = 0;
  for (const auto& lane : lanes_) {
    if (lane.buffer_.empty() || lane.tail_time_ <= horizon) ++uncovered;
  }
  while (uncovered > 0 && !done_) {
    if (source_->exhausted()) {
      done_ = true;
      break;
    }
    JobRequest req = source_->next();
    Lane& lane = lanes_[req.user_index % lanes_.size()];
    const bool was_uncovered =
        lane.buffer_.empty() || lane.tail_time_ <= horizon;
    lane.tail_time_ = req.submit_time;
    lane.buffer_.push_back(std::move(req));
    high_water_ = std::max(high_water_, ++buffered_count_);
    if (was_uncovered && lane.tail_time_ > horizon) --uncovered;
    if (source_->exhausted()) done_ = true;
  }
}

double WorkloadDemux::Lane::peek_next_submit_time() {
  if (buffer_.empty() && !owner_->manual_) owner_->pull_for(*this);
  return buffer_.empty() ? kNoMoreJobs : buffer_.front().submit_time;
}

JobRequest WorkloadDemux::Lane::next() {
  if (buffer_.empty() && !owner_->manual_) owner_->pull_for(*this);
  JobRequest out = std::move(buffer_.front());
  buffer_.pop_front();
  --owner_->buffered_count_;
  return out;
}

bool WorkloadDemux::Lane::exhausted() {
  if (buffer_.empty() && !owner_->manual_) owner_->pull_for(*this);
  return buffer_.empty() && owner_->done_;
}

}  // namespace faucets::job
