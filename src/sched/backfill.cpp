#include "src/sched/backfill.hpp"

#include <algorithm>
#include <vector>

namespace faucets::sched {

BackfillStrategy::Shadow BackfillStrategy::shadow_for(const SchedulerContext& ctx,
                                                      int head_size) const {
  std::vector<std::pair<double, int>> finishes;  // (finish time, procs freed)
  finishes.reserve(ctx.running.size());
  for (const auto* j : ctx.running) {
    finishes.emplace_back(j->projected_finish(ctx.now), j->procs());
  }
  std::sort(finishes.begin(), finishes.end());

  int free_procs = ctx.free_procs();
  if (free_procs >= head_size) return Shadow{ctx.now, free_procs - head_size};
  for (const auto& [t, p] : finishes) {
    free_procs += p;
    if (free_procs >= head_size) return Shadow{t, free_procs - head_size};
  }
  // Head can never start with current information (should not happen when
  // admission checked machine size).
  return Shadow{1e300, 0};
}

AdmissionDecision BackfillStrategy::admit(const SchedulerContext& ctx,
                                          const qos::QosContract& contract) {
  if (contract.min_procs > ctx.total_procs()) {
    return AdmissionDecision::rejected("job larger than machine");
  }
  const int size = request_size(ctx, contract);
  const double speed = ctx.machine != nullptr ? ctx.machine->speed_factor : 1.0;
  // Estimate: it starts no earlier than its own shadow time behind the
  // current queue's aggregate demand.
  double backlog = 0.0;
  for (const auto* j : ctx.queued) backlog += j->remaining_work();
  const Shadow s = shadow_for(ctx, size);
  const double queue_drain =
      backlog / (static_cast<double>(ctx.total_procs()) * speed);
  return AdmissionDecision::accepted(std::max(s.time, ctx.now + queue_drain) +
                                     contract.estimated_runtime(size, speed));
}

std::vector<Allocation> BackfillStrategy::schedule(const SchedulerContext& ctx) {
  std::vector<Allocation> out;
  if (ctx.queued.empty()) return out;

  const double speed = ctx.machine != nullptr ? ctx.machine->speed_factor : 1.0;
  int free_procs = ctx.free_procs();

  // Head of queue starts if it fits.
  const auto* head = ctx.queued.front();
  const int head_size = request_size(ctx, head->contract());
  if (head_size <= free_procs) {
    out.push_back(Allocation{head->id(), head_size});
    free_procs -= head_size;
    // With the head gone a new head exists; a single pass per event keeps
    // the strategy simple — the next event re-runs schedule() and promotes
    // further jobs. Start what fits greedily in FCFS order below.
    for (std::size_t i = 1; i < ctx.queued.size(); ++i) {
      const auto* j = ctx.queued[i];
      const int size = request_size(ctx, j->contract());
      if (size > free_procs) break;
      out.push_back(Allocation{j->id(), size});
      free_procs -= size;
    }
    return out;
  }

  // Head blocked: compute its reservation and backfill around it.
  const Shadow shadow = shadow_for(ctx, head_size);
  int spare_at_shadow = shadow.spare;
  for (std::size_t i = 1; i < ctx.queued.size(); ++i) {
    const auto* j = ctx.queued[i];
    const int size = request_size(ctx, j->contract());
    if (size > free_procs) continue;
    const double finish =
        ctx.now + j->contract().efficiency.time_to_complete(j->remaining_work(), size) /
                      speed;
    const bool before_shadow = finish <= shadow.time;
    const bool within_spare = size <= spare_at_shadow;
    if (before_shadow || within_spare) {
      out.push_back(Allocation{j->id(), size});
      free_procs -= size;
      if (!before_shadow) spare_at_shadow -= size;
    }
  }
  return out;
}

}  // namespace faucets::sched
