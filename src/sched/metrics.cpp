#include "src/sched/metrics.hpp"

namespace faucets::sched {

void MetricsCollector::on_completed(const job::Job& job) {
  ++completed_;
  response_times_.add(job.response_time());
  wait_times_.add(job.wait_time());
  slowdowns_.add(job.bounded_slowdown());
  total_payoff_ += job.earned_payoff();
  work_completed_ += job.total_work();
  total_reconfigs_ += static_cast<std::uint64_t>(job.reconfig_count());
  const auto& payoff = job.contract().payoff;
  if (payoff.has_deadline() && job.finish_time() > payoff.hard_deadline()) {
    ++deadline_misses_;
  }
}

void MetricsCollector::on_rejected() { ++rejected_; }
void MetricsCollector::on_failed() { ++failed_; }

}  // namespace faucets::sched
