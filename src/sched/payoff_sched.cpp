#include "src/sched/payoff_sched.hpp"

#include <algorithm>
#include <cmath>

namespace faucets::sched {

namespace {
constexpr double kInf = 1e300;

double speed_of(const SchedulerContext& ctx) {
  return ctx.machine != nullptr ? ctx.machine->speed_factor : 1.0;
}
}  // namespace

cluster::GanttChart PayoffStrategy::commitments(const SchedulerContext& ctx,
                                                double horizon) {
  cluster::GanttChart gantt{std::max(1, ctx.total_procs())};
  for (const auto* j : ctx.running) {
    const double finish = std::min(j->projected_finish(ctx.now), horizon);
    // Adaptive jobs can be shrunk to their contract minimum to make room
    // (the §4.1 mechanism), so only that floor is a hard commitment. The
    // finish estimate stays at the current rate — conservative in duration,
    // optimistic in processors.
    const int floor_procs = std::min(j->procs(), j->contract().min_procs);
    if (finish > ctx.now) gantt.reserve(ctx.now, finish, floor_procs);
  }
  const double speed = speed_of(ctx);
  for (const auto* j : ctx.queued) {
    const int procs = std::min(j->contract().min_procs, gantt.capacity());
    const double runtime =
        j->contract().efficiency.time_to_complete(j->remaining_work(), procs) / speed;
    const double start = gantt.earliest_fit(ctx.now, runtime, procs, horizon);
    if (start < horizon) gantt.reserve(start, start + runtime, procs);
  }
  return gantt;
}

double PayoffStrategy::priority(const job::Job& job, double now) {
  const auto& payoff = job.contract().payoff;
  const double value = std::max(payoff.max_payoff(), 0.0);
  const double work = std::max(job.remaining_work(), 1.0);
  double density = value / work;
  if (payoff.has_deadline()) {
    // Urgency: boost as slack to the soft deadline shrinks.
    const double min_runtime =
        job.contract().efficiency.time_to_complete(job.remaining_work(),
                                                   job.contract().max_procs);
    const double slack = payoff.soft_deadline() - now - min_runtime;
    if (slack < 0.0) {
      density *= 4.0;  // already late for the soft deadline: race the hard one
    } else {
      density *= 1.0 + min_runtime / (min_runtime + slack);
    }
  }
  return density;
}

double PayoffStrategy::estimate_displacement_loss(const SchedulerContext& ctx,
                                                  const qos::QosContract& contract,
                                                  double start,
                                                  double duration) const {
  if (!params_.charge_displacement_loss) return 0.0;
  const int total = std::max(1, ctx.total_procs());
  // The newcomer removes min_procs of capacity for `duration`; existing
  // deadline jobs slow down by that capacity fraction while it runs.
  const double capacity_fraction =
      static_cast<double>(std::min(contract.min_procs, total)) / total;
  double loss = 0.0;
  for (const auto* j : ctx.running) {
    const auto& payoff = j->contract().payoff;
    if (!payoff.has_deadline()) continue;
    const double finish = j->projected_finish(ctx.now);
    if (finish >= kInf || finish <= start) continue;
    const double overlap = std::min(finish, start + duration) - start;
    if (overlap <= 0.0) continue;
    // Stretch: during the overlap the job progresses at (1 - f) speed.
    const double delay = overlap * capacity_fraction / (1.0 - capacity_fraction + 1e-9);
    const double before = payoff.value_at(finish);
    const double after = payoff.value_at(finish + delay);
    if (after < before) loss += before - after;
  }
  return loss;
}

AdmissionDecision PayoffStrategy::admit(const SchedulerContext& ctx,
                                        const qos::QosContract& contract) {
  if (contract.min_procs > ctx.total_procs()) {
    return AdmissionDecision::rejected("job larger than machine");
  }
  const double speed = speed_of(ctx);
  const double horizon = ctx.now + std::max(params_.lookahead, 0.0) +
                         contract.estimated_runtime(contract.min_procs, speed);

  auto gantt = commitments(ctx, horizon);
  const double runtime_min = contract.estimated_runtime(contract.min_procs, speed);
  const double window_end = ctx.now + std::max(params_.lookahead, 0.0);
  const double start =
      gantt.earliest_fit(ctx.now, runtime_min, contract.min_procs, horizon);
  if (start > window_end) {
    return AdmissionDecision::rejected("no window within lookahead");
  }

  // Completion promise: assume the job runs at the larger of min_procs and
  // the processors actually spare at its start.
  const int spare = gantt.capacity() - gantt.peak_committed(start, start + runtime_min);
  const int procs = std::clamp(contract.min_procs + std::max(0, spare),
                               contract.min_procs,
                               std::min(contract.max_procs, ctx.total_procs()));
  const double runtime = contract.estimated_runtime(procs, speed);
  const double completion = start + runtime;

  const double payoff = contract.payoff.value_at(completion);
  if (payoff <= 0.0) {
    return AdmissionDecision::rejected("unprofitable at projected completion");
  }
  const double loss = estimate_displacement_loss(ctx, contract, start, runtime);
  if (payoff < loss + params_.admission_threshold) {
    return AdmissionDecision::rejected("payoff does not compensate inflicted loss");
  }
  return AdmissionDecision::accepted(completion);
}

std::vector<Allocation> PayoffStrategy::schedule(const SchedulerContext& ctx) {
  const double speed = speed_of(ctx);
  std::vector<const job::Job*> jobs;
  jobs.reserve(ctx.running.size() + ctx.queued.size());
  jobs.insert(jobs.end(), ctx.running.begin(), ctx.running.end());
  jobs.insert(jobs.end(), ctx.queued.begin(), ctx.queued.end());
  std::stable_sort(jobs.begin(), jobs.end(),
                   [&](const job::Job* a, const job::Job* b) {
                     return priority(*a, ctx.now) > priority(*b, ctx.now);
                   });

  const int total = ctx.total_procs();
  std::vector<Allocation> out;
  out.reserve(jobs.size());

  // Pass 1: each job, in priority order, gets the processors it needs to
  // make its soft deadline (its "desired" size), bounded by what remains.
  std::vector<int> granted(jobs.size(), 0);
  int cap = total;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const job::Job& j = *jobs[i];
    const auto& c = j.contract();
    const int max_here = std::min(c.max_procs, total);
    int desired = c.min_procs;
    if (c.payoff.has_deadline()) {
      // Smallest p whose completion meets the soft deadline.
      desired = max_here;
      for (int p = c.min_procs; p <= max_here; ++p) {
        const double finish =
            ctx.now + c.efficiency.time_to_complete(j.remaining_work(), p) / speed;
        if (finish <= c.payoff.soft_deadline()) {
          desired = p;
          break;
        }
      }
    }
    if (c.min_procs > cap) continue;  // stays queued this round
    granted[i] = std::min(desired, cap);
    if (granted[i] < c.min_procs) granted[i] = c.min_procs;
    cap -= granted[i];
  }

  // Pass 2: spread leftover capacity top-down so finished-early premiums
  // are captured.
  for (std::size_t i = 0; i < jobs.size() && cap > 0; ++i) {
    if (granted[i] == 0) continue;
    const int max_here = std::min(jobs[i]->contract().max_procs, total);
    const int extra = std::min(cap, max_here - granted[i]);
    granted[i] += extra;
    cap -= extra;
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out.push_back(Allocation{jobs[i]->id(), granted[i]});
  }
  return out;
}

}  // namespace faucets::sched
