// Profit-driven adaptive scheduler (§4.1).
//
// "If a high profit job arrives and has a tight deadline, the low priority
// jobs can be shrunk and the freed processors can be allocated to the high
// priority job. [...] running a new job may delay other jobs and lead to a
// loss in profit. So the payoff from the new job must at least compensate
// for the loss mentioned above or the job must be rejected. The strategy
// must find time windows for the job in its processor-time Gantt chart
// before the job's deadline. [...] Our current prototype strategy accepts a
// job if it is profitable and can be scheduled to run now or at a finite
// lookahead in future."
#pragma once

#include "src/cluster/gantt.hpp"
#include "src/sched/scheduler.hpp"

namespace faucets::sched {

struct PayoffStrategyParams {
  /// How far into the future admission searches for a window (seconds).
  /// 0 reproduces the paper's earliest prototype: accept only if the job
  /// can start right now.
  double lookahead = 24.0 * 3600.0;

  /// Minimum surplus (payoff minus inflicted loss) required to admit.
  double admission_threshold = 0.0;

  /// Whether admission charges the estimated payoff loss inflicted on
  /// already-accepted deadline jobs (the compensation rule quoted above).
  bool charge_displacement_loss = true;
};

class PayoffStrategy final : public Strategy {
 public:
  explicit PayoffStrategy(PayoffStrategyParams params = {}) : params_(params) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "payoff"; }
  [[nodiscard]] bool adaptive() const noexcept override { return true; }

  [[nodiscard]] AdmissionDecision admit(const SchedulerContext& ctx,
                                        const qos::QosContract& contract) override;
  [[nodiscard]] std::vector<Allocation> schedule(const SchedulerContext& ctx) override;

  [[nodiscard]] const PayoffStrategyParams& params() const noexcept { return params_; }

  /// Build the committed processor-time profile from the live jobs:
  /// running jobs occupy their current processors until their projected
  /// finish; queued jobs are placed greedily at their earliest window.
  [[nodiscard]] static cluster::GanttChart commitments(const SchedulerContext& ctx,
                                                       double horizon);

  /// Value density used for priority: maximum remaining payoff per unit of
  /// remaining work, with urgency boost as the soft deadline approaches.
  [[nodiscard]] static double priority(const job::Job& job, double now);

 private:
  [[nodiscard]] double estimate_displacement_loss(const SchedulerContext& ctx,
                                                  const qos::QosContract& contract,
                                                  double start, double duration) const;

  PayoffStrategyParams params_;
};

}  // namespace faucets::sched
