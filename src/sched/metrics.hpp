// Per-cluster scheduling metrics: the system utility measures §4.1 lists
// (utilization, response time, profit).
#pragma once

#include <cstdint>

#include "src/job/job.hpp"
#include "src/util/stats.hpp"

namespace faucets::sched {

class MetricsCollector {
 public:
  explicit MetricsCollector(int total_procs) : total_procs_(total_procs) {}

  /// Record that `busy` processors are in use from `time` on.
  void record_busy(double time, int busy) {
    busy_signal_.record(time, static_cast<double>(busy));
    current_busy_ = busy;
  }

  /// Processors in use as of the last record_busy() — the live signal the
  /// time-series sampler probes between allocation changes.
  [[nodiscard]] int current_busy() const noexcept { return current_busy_; }

  void on_completed(const job::Job& job);
  void on_rejected();
  void on_failed();

  /// Close the observation window.
  void finish(double end_time) { busy_signal_.finish(end_time); }

  [[nodiscard]] double utilization() const noexcept {
    return total_procs_ == 0
               ? 0.0
               : busy_signal_.time_weighted_mean() / static_cast<double>(total_procs_);
  }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] std::uint64_t failed() const noexcept { return failed_; }
  [[nodiscard]] double total_payoff() const noexcept { return total_payoff_; }
  [[nodiscard]] std::uint64_t deadline_misses() const noexcept { return deadline_misses_; }
  [[nodiscard]] const Samples& response_times() const noexcept { return response_times_; }
  [[nodiscard]] const Samples& wait_times() const noexcept { return wait_times_; }
  [[nodiscard]] const Samples& slowdowns() const noexcept { return slowdowns_; }
  [[nodiscard]] double work_completed() const noexcept { return work_completed_; }
  [[nodiscard]] std::uint64_t total_reconfigs() const noexcept { return total_reconfigs_; }

 private:
  int total_procs_;
  int current_busy_ = 0;
  TimeWeightedStats busy_signal_;
  Samples response_times_;
  Samples wait_times_;
  Samples slowdowns_;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t deadline_misses_ = 0;
  std::uint64_t total_reconfigs_ = 0;
  double total_payoff_ = 0.0;
  double work_completed_ = 0.0;
};

}  // namespace faucets::sched
