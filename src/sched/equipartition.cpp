#include "src/sched/equipartition.hpp"

#include <algorithm>

namespace faucets::sched {

std::vector<int> EquipartitionStrategy::equipartition(
    const std::vector<std::pair<int, int>>& bounds, int capacity) {
  std::vector<int> alloc(bounds.size(), 0);

  // Pass 1: guarantee minimums in priority order while capacity lasts.
  int cap = capacity;
  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const int lo = bounds[i].first;
    if (lo <= cap) {
      alloc[i] = lo;
      cap -= lo;
      selected.push_back(i);
    }
  }

  // Pass 2: water-fill the remaining capacity equally, clamped to maxima.
  while (cap > 0) {
    std::size_t unsaturated = 0;
    for (std::size_t i : selected) {
      if (alloc[i] < bounds[i].second) ++unsaturated;
    }
    if (unsaturated == 0) break;
    const int inc = std::max(1, cap / static_cast<int>(unsaturated));
    bool gave = false;
    for (std::size_t i : selected) {
      if (cap == 0) break;
      const int room = bounds[i].second - alloc[i];
      if (room <= 0) continue;
      const int give = std::min({inc, room, cap});
      alloc[i] += give;
      cap -= give;
      gave = gave || give > 0;
    }
    if (!gave) break;
  }
  return alloc;
}

AdmissionDecision EquipartitionStrategy::admit(const SchedulerContext& ctx,
                                               const qos::QosContract& contract) {
  if (contract.min_procs > ctx.total_procs()) {
    return AdmissionDecision::rejected("job larger than machine");
  }
  const double speed = ctx.machine != nullptr ? ctx.machine->speed_factor : 1.0;

  // Estimate by running the actual water-filling with the candidate
  // appended after every live job.
  std::vector<std::pair<int, int>> bounds;
  bounds.reserve(ctx.running.size() + ctx.queued.size() + 1);
  for (const auto* j : ctx.running) {
    bounds.emplace_back(j->contract().min_procs,
                        std::min(j->contract().max_procs, ctx.total_procs()));
  }
  for (const auto* j : ctx.queued) {
    bounds.emplace_back(j->contract().min_procs,
                        std::min(j->contract().max_procs, ctx.total_procs()));
  }
  bounds.emplace_back(contract.min_procs,
                      std::min(contract.max_procs, ctx.total_procs()));
  const auto alloc = equipartition(bounds, ctx.total_procs());
  const int share = alloc.back();
  if (share > 0) {
    return AdmissionDecision::accepted(ctx.now +
                                       contract.estimated_runtime(share, speed));
  }
  // No share right now: the candidate waits roughly while the current
  // backlog drains at full machine rate, then runs.
  double backlog = 0.0;
  for (const auto* j : ctx.running) backlog += j->remaining_work();
  for (const auto* j : ctx.queued) backlog += j->remaining_work();
  const double drain =
      backlog / (static_cast<double>(ctx.total_procs()) * speed);
  const int procs = std::min(contract.max_procs, ctx.total_procs());
  return AdmissionDecision::accepted(ctx.now + drain +
                                     contract.estimated_runtime(procs, speed));
}

std::vector<Allocation> EquipartitionStrategy::schedule(const SchedulerContext& ctx) {
  // Priority order: submission order, running and queued interleaved by id
  // (ids are monotone in submission time on one cluster).
  std::vector<const job::Job*> jobs;
  jobs.reserve(ctx.running.size() + ctx.queued.size());
  jobs.insert(jobs.end(), ctx.running.begin(), ctx.running.end());
  jobs.insert(jobs.end(), ctx.queued.begin(), ctx.queued.end());
  std::sort(jobs.begin(), jobs.end(),
            [](const job::Job* a, const job::Job* b) { return a->id() < b->id(); });

  std::vector<std::pair<int, int>> bounds;
  bounds.reserve(jobs.size());
  for (const auto* j : jobs) {
    bounds.emplace_back(j->contract().min_procs,
                        std::min(j->contract().max_procs, ctx.total_procs()));
  }
  const auto alloc = equipartition(bounds, ctx.total_procs());

  std::vector<Allocation> out;
  out.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out.push_back(Allocation{jobs[i]->id(), alloc[i]});
  }
  return out;
}

}  // namespace faucets::sched
