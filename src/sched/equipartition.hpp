// Adaptive equipartition: the earliest strategy of the malleable-job
// scheduler [15] the paper cites in §4.1 — "each job gets a proportionate
// share of available processors, while respecting the specified upper and
// lower bounds on the number of processors for each job."
#pragma once

#include "src/sched/scheduler.hpp"

namespace faucets::sched {

class EquipartitionStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "equipartition"; }
  [[nodiscard]] bool adaptive() const noexcept override { return true; }

  [[nodiscard]] AdmissionDecision admit(const SchedulerContext& ctx,
                                        const qos::QosContract& contract) override;
  [[nodiscard]] std::vector<Allocation> schedule(const SchedulerContext& ctx) override;

  /// The water-filling core, exposed for unit tests: given (min, max) per
  /// job in priority order and a capacity, return per-job allocations
  /// (0 = cannot run). Guarantees sum <= capacity and each allocation is 0
  /// or within [min, max].
  [[nodiscard]] static std::vector<int> equipartition(
      const std::vector<std::pair<int, int>>& bounds, int capacity);
};

}  // namespace faucets::sched
