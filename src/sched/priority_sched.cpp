#include "src/sched/priority_sched.hpp"

#include <algorithm>

namespace faucets::sched {

double PriorityStrategy::effective_priority(const job::Job& job) const {
  double priority = job.contract().priority;
  if (params_.fair_usage_weight > 0.0) {
    auto it = usage_.find(job.owner());
    if (it != usage_.end()) {
      const double over = std::max(0.0, it->second - params_.fair_usage_grace);
      priority -= over / params_.fair_usage_weight;
    }
  }
  return priority;
}

void PriorityStrategy::charge_usage(UserId user, double proc_seconds) {
  usage_[user] += proc_seconds;
}

double PriorityStrategy::usage_of(UserId user) const {
  auto it = usage_.find(user);
  return it == usage_.end() ? 0.0 : it->second;
}

AdmissionDecision PriorityStrategy::admit(const SchedulerContext& ctx,
                                          const qos::QosContract& contract) {
  if (contract.min_procs > ctx.total_procs()) {
    return AdmissionDecision::rejected("job larger than machine");
  }
  // Intranet pools accept everything; priorities settle who runs when.
  // Completion estimate: equal share among live jobs of this or higher
  // priority plus the newcomer.
  int competitors = 1;
  for (const auto* j : ctx.running) {
    if (j->contract().priority >= contract.priority) ++competitors;
  }
  for (const auto* j : ctx.queued) {
    if (j->contract().priority >= contract.priority) ++competitors;
  }
  const int share = std::clamp(ctx.total_procs() / competitors, contract.min_procs,
                               std::min(contract.max_procs, ctx.total_procs()));
  const double speed = ctx.machine != nullptr ? ctx.machine->speed_factor : 1.0;
  return AdmissionDecision::accepted(ctx.now +
                                     contract.estimated_runtime(share, speed));
}

std::vector<Allocation> PriorityStrategy::schedule(const SchedulerContext& ctx) {
  std::vector<const job::Job*> jobs;
  jobs.reserve(ctx.running.size() + ctx.queued.size());
  jobs.insert(jobs.end(), ctx.running.begin(), ctx.running.end());
  if (params_.allow_preemption) {
    jobs.insert(jobs.end(), ctx.queued.begin(), ctx.queued.end());
  }
  // Order by effective priority, then submission order (job id).
  std::stable_sort(jobs.begin(), jobs.end(),
                   [this](const job::Job* a, const job::Job* b) {
                     const double pa = effective_priority(*a);
                     const double pb = effective_priority(*b);
                     if (pa != pb) return pa > pb;
                     return a->id() < b->id();
                   });

  const int total = ctx.total_procs();
  int cap = total;
  std::vector<Allocation> out;
  out.reserve(jobs.size() + ctx.queued.size());

  // Pass 1: minimums in priority order; jobs that no longer fit are
  // preempted (vacated to the queue, restartable later — the model's
  // checkpoint is free within one machine).
  std::vector<int> grant(jobs.size(), 0);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& c = jobs[i]->contract();
    if (c.min_procs <= cap) {
      grant[i] = c.min_procs;
      cap -= grant[i];
    } else if (jobs[i]->procs() > 0) {
      ++preemptions_;
    }
  }
  // Pass 2: leftover capacity expands jobs, highest priority first.
  for (std::size_t i = 0; i < jobs.size() && cap > 0; ++i) {
    if (grant[i] == 0) continue;
    const int max_here = std::min(jobs[i]->contract().max_procs, total);
    const int extra = std::min(cap, max_here - grant[i]);
    grant[i] += extra;
    cap -= extra;
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out.push_back(Allocation{jobs[i]->id(), grant[i]});
  }

  if (!params_.allow_preemption) {
    // Without preemption, queued jobs only start into leftover capacity in
    // priority order.
    std::vector<const job::Job*> waiting{ctx.queued.begin(), ctx.queued.end()};
    std::stable_sort(waiting.begin(), waiting.end(),
                     [this](const job::Job* a, const job::Job* b) {
                       const double pa = effective_priority(*a);
                       const double pb = effective_priority(*b);
                       if (pa != pb) return pa > pb;
                       return a->id() < b->id();
                     });
    for (const auto* j : waiting) {
      const auto& c = j->contract();
      if (c.min_procs > cap) continue;
      const int granted = std::min(std::min(c.max_procs, total), cap);
      out.push_back(Allocation{j->id(), granted});
      cap -= granted;
    }
  }
  return out;
}

}  // namespace faucets::sched
