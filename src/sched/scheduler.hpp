// Strategy interface for job schedulers ("Adaptive Queueing System aka
// Scheduler aka Cluster Manager" in the paper's component list).
//
// Decisions on allocating processors to jobs are taken by a strategy that
// can be plugged into the Cluster Manager (§4.1). A strategy answers two
// questions: should this job be admitted (and what completion can we
// promise, which backs the bid), and how many processors should every
// current job hold right now.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/cluster/machine.hpp"
#include "src/job/job.hpp"
#include "src/qos/contract.hpp"

namespace faucets::sim {
class SimContext;
}  // namespace faucets::sim

namespace faucets::sched {

/// Desired processor count for one job; 0 means vacate to the queue.
struct Allocation {
  JobId job;
  int procs = 0;
};

/// Read-only view of the cluster state handed to strategies. Jobs are
/// non-owning pointers; `running` jobs hold processors, `queued` jobs wait.
/// Both lists are ordered by submission time.
struct SchedulerContext {
  double now = 0.0;
  /// The run's simulation context (trace sink, RNG, network counters).
  /// Null when a strategy is exercised standalone in unit tests.
  sim::SimContext* sim = nullptr;
  const cluster::MachineSpec* machine = nullptr;
  std::vector<const job::Job*> running;
  std::vector<const job::Job*> queued;

  [[nodiscard]] int total_procs() const noexcept {
    return machine != nullptr ? machine->total_procs : 0;
  }
  [[nodiscard]] int busy_procs() const noexcept {
    int n = 0;
    for (const auto* j : running) n += j->procs();
    return n;
  }
  [[nodiscard]] int free_procs() const noexcept { return total_procs() - busy_procs(); }
};

/// Outcome of an admission query. `estimated_completion` (absolute sim
/// time) is the promise a bid is built on.
struct AdmissionDecision {
  bool accept = false;
  double estimated_completion = 1e300;
  std::string reason;

  static AdmissionDecision rejected(std::string why) {
    return AdmissionDecision{false, 1e300, std::move(why)};
  }
  static AdmissionDecision accepted(double completion) {
    return AdmissionDecision{true, completion, {}};
  }
};

/// How a non-adaptive strategy chooses the fixed size of a malleable job.
enum class RigidRequest {
  kMin,     // conservative: the contract minimum
  kMedian,  // geometric middle of the range
  kMax,     // aggressive: the contract maximum (clamped to the machine)
};

[[nodiscard]] int rigid_request_size(const qos::QosContract& contract,
                                     RigidRequest policy, int machine_procs);

class Strategy {
 public:
  virtual ~Strategy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// True if the strategy exploits malleable jobs.
  [[nodiscard]] virtual bool adaptive() const noexcept = 0;

  /// Decide whether to admit `contract` given the current state. Must not
  /// mutate anything; called both for bids and for actual submission.
  [[nodiscard]] virtual AdmissionDecision admit(const SchedulerContext& ctx,
                                                const qos::QosContract& contract) = 0;

  /// Produce the target allocation for every job in `ctx.running` and
  /// `ctx.queued`. Jobs omitted from the result keep their current
  /// allocation. Called whenever the job set changes.
  [[nodiscard]] virtual std::vector<Allocation> schedule(const SchedulerContext& ctx) = 0;
};

}  // namespace faucets::sched
