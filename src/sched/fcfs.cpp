#include "src/sched/fcfs.hpp"

#include <algorithm>
#include <cmath>

namespace faucets::sched {

int rigid_request_size(const qos::QosContract& contract, RigidRequest policy,
                       int machine_procs) {
  int size = contract.min_procs;
  switch (policy) {
    case RigidRequest::kMin:
      size = contract.min_procs;
      break;
    case RigidRequest::kMedian:
      size = static_cast<int>(std::lround(std::sqrt(
          static_cast<double>(contract.min_procs) * contract.max_procs)));
      break;
    case RigidRequest::kMax:
      size = contract.max_procs;
      break;
  }
  const int hi =
      std::max(contract.min_procs, std::min(contract.max_procs, std::max(machine_procs, 1)));
  return std::clamp(size, contract.min_procs, hi);
}

int FcfsStrategy::request_size(const SchedulerContext& ctx,
                               const qos::QosContract& contract) const {
  return rigid_request_size(contract, request_, ctx.total_procs());
}

AdmissionDecision FcfsStrategy::admit(const SchedulerContext& ctx,
                                      const qos::QosContract& contract) {
  if (contract.min_procs > ctx.total_procs()) {
    return AdmissionDecision::rejected("job larger than machine");
  }
  const int size = request_size(ctx, contract);
  // Completion estimate: all queued work drains at full machine rate, then
  // this job runs at its fixed size. Crude, as a real FCFS queue estimate is.
  double backlog = 0.0;
  for (const auto* j : ctx.running) backlog += j->remaining_work();
  for (const auto* j : ctx.queued) backlog += j->remaining_work();
  const double drain =
      backlog / (static_cast<double>(ctx.total_procs()) *
                 (ctx.machine != nullptr ? ctx.machine->speed_factor : 1.0));
  const double speed = ctx.machine != nullptr ? ctx.machine->speed_factor : 1.0;
  const double run = contract.estimated_runtime(size, speed);
  return AdmissionDecision::accepted(ctx.now + drain + run);
}

std::vector<Allocation> FcfsStrategy::schedule(const SchedulerContext& ctx) {
  std::vector<Allocation> out;
  int free_procs = ctx.free_procs();
  // Strict FCFS: start queued jobs in order while they fit; stop at the
  // first that does not.
  for (const auto* j : ctx.queued) {
    const int size = request_size(ctx, j->contract());
    if (size > free_procs) break;
    out.push_back(Allocation{j->id(), size});
    free_procs -= size;
  }
  return out;
}

}  // namespace faucets::sched
