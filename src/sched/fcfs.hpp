// Rigid first-come-first-served scheduler: the baseline "traditional
// queuing system" of the paper's comparison. Jobs run at a fixed size and
// the queue head blocks everything behind it — the source of the internal
// fragmentation scenario in §1.
#pragma once

#include "src/sched/scheduler.hpp"

namespace faucets::sched {

class FcfsStrategy final : public Strategy {
 public:
  explicit FcfsStrategy(RigidRequest request = RigidRequest::kMedian)
      : request_(request) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "fcfs"; }
  [[nodiscard]] bool adaptive() const noexcept override { return false; }

  [[nodiscard]] AdmissionDecision admit(const SchedulerContext& ctx,
                                        const qos::QosContract& contract) override;
  [[nodiscard]] std::vector<Allocation> schedule(const SchedulerContext& ctx) override;

  /// Fixed size this strategy would run `contract` at on `ctx.machine`.
  [[nodiscard]] int request_size(const SchedulerContext& ctx,
                                 const qos::QosContract& contract) const;

 private:
  RigidRequest request_;
};

}  // namespace faucets::sched
