// Intranet scheduler (§5.5.4): "When a company or a laboratory wishes its
// Compute Server's resources to be pooled among its users [...] Different
// jobs may have priorities assigned by management. Pre-emption of low
// priority jobs may be allowed (with automatic restart from a checkpoint
// later). Further, some elements of the bartering scheme may be
// incorporated in order to allow individual departments or users [to get]
// 'fair usage' from resources, so that high priority jobs do not forever
// starve a subset of users."
#pragma once

#include <unordered_map>

#include "src/sched/scheduler.hpp"

namespace faucets::sched {

struct PriorityStrategyParams {
  /// Allow running jobs to be preempted (vacated to the queue) by higher
  /// priority arrivals. Off = priorities only order the queue.
  bool allow_preemption = true;

  /// Fair-usage decay: a user's accumulated processor-seconds divided by
  /// this constant is subtracted from their jobs' effective priority.
  /// 0 disables fair usage.
  double fair_usage_weight = 0.0;

  /// Proc-seconds of "free" usage before fair-usage starts to bite.
  double fair_usage_grace = 0.0;
};

class PriorityStrategy final : public Strategy {
 public:
  explicit PriorityStrategy(PriorityStrategyParams params = {}) : params_(params) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "priority"; }
  [[nodiscard]] bool adaptive() const noexcept override { return true; }

  [[nodiscard]] AdmissionDecision admit(const SchedulerContext& ctx,
                                        const qos::QosContract& contract) override;
  [[nodiscard]] std::vector<Allocation> schedule(const SchedulerContext& ctx) override;

  /// Effective priority of a job after the fair-usage penalty.
  [[nodiscard]] double effective_priority(const job::Job& job) const;

  /// Record completed usage (the ClusterManager's completion callback
  /// forwards here when fair usage is on; tests call it directly).
  void charge_usage(UserId user, double proc_seconds);

  [[nodiscard]] double usage_of(UserId user) const;
  [[nodiscard]] std::uint64_t preemptions() const noexcept { return preemptions_; }

 private:
  PriorityStrategyParams params_;
  std::unordered_map<UserId, double> usage_;
  std::uint64_t preemptions_ = 0;
};

}  // namespace faucets::sched
