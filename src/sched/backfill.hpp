// EASY backfill: the strongest widely deployed rigid scheduler, included so
// the adaptive strategies are compared against more than plain FCFS. The
// queue head gets a reservation at the earliest time enough processors
// free up; later jobs may jump ahead only if they do not delay that
// reservation.
#pragma once

#include "src/sched/scheduler.hpp"

namespace faucets::sched {

class BackfillStrategy final : public Strategy {
 public:
  explicit BackfillStrategy(RigidRequest request = RigidRequest::kMedian)
      : request_(request) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "easy-backfill"; }
  [[nodiscard]] bool adaptive() const noexcept override { return false; }

  [[nodiscard]] AdmissionDecision admit(const SchedulerContext& ctx,
                                        const qos::QosContract& contract) override;
  [[nodiscard]] std::vector<Allocation> schedule(const SchedulerContext& ctx) override;

 private:
  [[nodiscard]] int request_size(const SchedulerContext& ctx,
                                 const qos::QosContract& contract) const {
    return rigid_request_size(contract, request_, ctx.total_procs());
  }

  /// Shadow time: earliest moment the queue head could start given running
  /// jobs' projected finishes. Also reports processors spare at that time.
  struct Shadow {
    double time = 0.0;
    int spare = 0;
  };
  [[nodiscard]] Shadow shadow_for(const SchedulerContext& ctx, int head_size) const;

  RigidRequest request_;
};

}  // namespace faucets::sched
