#include "src/sim/trace.hpp"

#include <utility>

namespace faucets::sim {

void TraceRecorder::record(SimTime time, EntityId entity, std::string category,
                           std::string detail) {
  if (records_.size() >= capacity_ && capacity_ > 0) {
    // Drop the oldest half in one move to keep amortized cost linear.
    const std::size_t keep = capacity_ / 2;
    const std::size_t drop = records_.size() - keep;
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<std::ptrdiff_t>(drop));
    dropped_ += drop;
  }
  records_.push_back(TraceRecord{time, entity, std::move(category), std::move(detail)});
}

std::vector<TraceRecord> TraceRecorder::filter(const std::string& category) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.category == category) out.push_back(r);
  }
  return out;
}

void TraceRecorder::clear() noexcept {
  records_.clear();
  dropped_ = 0;
}

}  // namespace faucets::sim
