#include "src/sim/engine.hpp"

#include <cassert>
#include <utility>

#include "src/obs/profiler.hpp"

namespace faucets::sim {

namespace {
constexpr std::size_t kArity = 4;
}  // namespace

void Engine::sift_up(std::size_t i) noexcept {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(e, heap_[parent])) break;
    place(heap_[parent], i);
    i = parent;
  }
  place(e, i);
}

void Engine::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[i];
  for (;;) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    const std::size_t last = first + kArity < n ? first + kArity : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    place(heap_[best], i);
    i = best;
  }
  place(e, i);
}

void Engine::remove_heap_at(std::size_t pos) noexcept {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos >= heap_.size()) return;
  place(last, pos);
  if (pos > 0 && earlier(last, heap_[(pos - 1) / kArity])) {
    sift_up(pos);
  } else {
    sift_down(pos);
  }
}

void Engine::pop_root() noexcept {
  // Plain sift-down beats Floyd's bubble-up variant here: simulation
  // workloads have massive time ties, so the displaced bottom entry often
  // belongs high in the heap and the early exit fires after a level or two.
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return;
  place(last, 0);
  sift_down(0);
}

void Engine::retire_slot(std::uint32_t slot) noexcept {
  pos_[slot] = -1;
  ++slots_[slot].generation;  // invalidate handles before the slot recycles
  free_.push_back(slot);
}

EventHandle Engine::schedule_at(SimTime when, SmallFunction fn) {
  if (when < now_) when = now_;
  std::uint32_t s;
  if (free_.empty()) {
    s = static_cast<std::uint32_t>(slots_.size());
    assert(s <= kSlotMask && "event pool exceeds 2^24 pending events");
    slots_.emplace_back();
    pos_.push_back(-1);
    rank_.push_back(0.0);
    creator_.push_back(kNoEntity);
    cseq_.push_back(0);
    exec_entity_.push_back(kNoEntity);
  } else {
    s = free_.back();
    free_.pop_back();
  }
  Slot& slot = slots_[s];
  slot.fn = std::move(fn);
  rank_[s] = now_;
  const CreationStamp st = take_creation_stamp();
  creator_[s] = st.creator;
  cseq_[s] = st.cseq;
  exec_entity_[s] = current_entity_;  // timers inherit their scheduler
  pos_[s] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(HeapEntry{when, (next_seq_++ << kSlotBits) | s});
  sift_up(heap_.size() - 1);
  return EventHandle{this, s, slot.generation};
}

void Engine::cancel_slot(std::uint32_t slot, std::uint32_t generation) noexcept {
  if (!slot_active(slot, generation)) return;
  remove_heap_at(static_cast<std::size_t>(pos_[slot]));
  slots_[slot].fn.reset();
  retire_slot(slot);
}

bool Engine::step(SimTime until) {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_[0];
  if (top.time > until) return false;
  now_ = top.time;
  const std::uint32_t s = top.slot();
  // Detach the closure and retire the slot *before* invoking: the closure
  // may schedule (growing slots_), cancel, or even land in this very slot.
  SmallFunction fn = std::move(slots_[s].fn);
  cur_rank_ = rank_[s];
  cur_creator_ = creator_[s];
  cur_cseq_ = cseq_[s];
  current_entity_ = exec_entity_[s];
  pop_root();
  retire_slot(s);
  ++executed_;
#if FAUCETS_PROFILE
  if (prof_ != nullptr) {
    prof_->begin_event();
    fn();
    prof_->end_event();
    return true;
  }
#endif
  fn();
  return true;
}

std::uint64_t Engine::run(SimTime until) {
  std::uint64_t n = 0;
  while (step(until)) ++n;
  if (!heap_.empty() && heap_[0].time > until && until < kForever) now_ = until;
  return n;
}

}  // namespace faucets::sim
