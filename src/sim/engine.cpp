#include "src/sim/engine.hpp"

#include <utility>

namespace faucets::sim {

EventHandle Engine::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  auto flag = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), flag});
  return EventHandle{std::move(flag)};
}

bool Engine::step(SimTime until) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.time > until) return false;
    if (*top.cancelled) {
      queue_.pop();
      continue;
    }
    // Copy out before popping: fn may schedule new events and reallocate.
    Event ev{top.time, top.seq, std::move(const_cast<Event&>(top).fn), top.cancelled};
    queue_.pop();
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::uint64_t Engine::run(SimTime until) {
  std::uint64_t n = 0;
  while (step(until)) ++n;
  if (!queue_.empty() && queue_.top().time > until && until < kForever) now_ = until;
  return n;
}

}  // namespace faucets::sim
