// Event trace recorder. AppSpector builds its buffered per-job displays from
// these records; tests use them to assert protocol orderings.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/sim/engine.hpp"
#include "src/util/ids.hpp"

namespace faucets::sim {

/// One trace record: what happened, to whom, when.
struct TraceRecord {
  SimTime time = 0.0;
  EntityId entity;
  std::string category;  // e.g. "job", "bid", "auth"
  std::string detail;    // free-form description
};

/// Bounded trace buffer. When `capacity` is exceeded the oldest records are
/// discarded, mirroring AppSpector's display buffer that keeps recent output
/// available to late-joining watchers.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16) : capacity_(capacity) {}

  void record(SimTime time, EntityId entity, std::string category, std::string detail);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept { return records_; }

  /// All records in a category, oldest first.
  [[nodiscard]] std::vector<TraceRecord> filter(const std::string& category) const;

  void clear() noexcept;

 private:
  std::size_t capacity_;
  std::size_t dropped_ = 0;
  std::vector<TraceRecord> records_;
};

/// The name SimContext exposes: the per-run destination for trace records.
using TraceSink = TraceRecorder;

}  // namespace faucets::sim
