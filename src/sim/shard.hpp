// Shard routing for conservative parallel simulation.
//
// A sharded run partitions the grid's entities across N sim::Engines that
// advance in parallel on worker threads, synchronized at lookahead barriers:
// no cross-shard message can arrive sooner than now + base_latency, so every
// shard may safely execute events strictly below min(all shards' next event
// times) + base_latency without ever receiving a message from the past
// (Chandy–Misra conservative synchronization; DESIGN.md §11).
//
// The ShardRouter is the shared spine of such a run:
//   * it assigns EntityIds from a single global counter, so a sharded
//     construction produces exactly the ids a single-engine run would;
//   * it maps every EntityId to its owning shard (frozen after construction,
//     read lock-free during the run);
//   * it carries one bounded mailbox per destination shard into which
//     senders post timestamp-ordered envelopes (mutex-protected: posting is
//     the only cross-thread write during a window);
//   * it hands out the metrics-registration sequencer that makes per-shard
//     MetricsRegistry instances mergeable in a shard-count-independent order.
//
// Mailboxes are drained only at barriers, by the coordinating thread, into
// per-shard staging lists sorted by (arrival, sent_at, creator, cseq) — the
// same canonical key the engines use for same-time heap ties, so the merged
// execution order is a unique total order independent both of which OS
// thread ran which shard and of the shard count itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/sim/engine.hpp"
#include "src/sim/entity.hpp"

namespace faucets::sim {

class ShardRouter {
 public:
  /// One cross-shard message in flight. `arrival` already includes the full
  /// modeled delay (base latency + bandwidth term + injected jitter), and
  /// `sent_at` is the sender-side send time — the same value a single-engine
  /// run would have used as the delivery event's scheduling rank.
  struct Envelope {
    SimTime arrival = 0.0;
    SimTime sent_at = 0.0;
    /// Canonical creation stamp drawn from the sender's engine: the sending
    /// entity and its per-entity creation sequence — the identity the same
    /// logical send carries at every shard count (Engine::CreationStamp).
    std::uint64_t creator = 0;
    std::uint64_t cseq = 0;
    MessageKind kind = MessageKind::kCustom;
    MessagePtr msg;
  };

  explicit ShardRouter(std::size_t shard_count);

  [[nodiscard]] std::size_t shard_count() const noexcept { return mailboxes_.size(); }

  /// Assign the next EntityId and record its owning shard. Construction-time
  /// only (single-threaded): ids come from one global counter so they match
  /// a single-engine run entity for entity.
  EntityId assign_id(std::size_t shard);

  /// Owning shard of an attached entity. Lock-free; the map is frozen once
  /// construction completes (reattach after a crash keeps the original id).
  [[nodiscard]] std::size_t shard_of(EntityId id) const noexcept {
    const auto v = id.value();
    return v < shard_by_id_.size() ? shard_by_id_[static_cast<std::size_t>(v)] : 0;
  }

  /// Post an envelope to `dst_shard`'s mailbox. Thread-safe; called by the
  /// sending shard's worker during a window.
  void post(std::size_t dst_shard, Envelope env);

  /// Drain `dst_shard`'s mailbox into `staged`, keeping `staged` sorted by
  /// (arrival, sent_at, creator, cseq). `consumed` is the count of
  /// already-delivered entries at the front of `staged`; they are erased
  /// first and the counter reset. Barrier-time only (no concurrent posts).
  void drain(std::size_t dst_shard, std::vector<Envelope>& staged,
             std::size_t& consumed);

  /// High-water mark of any mailbox between two drains — the bound on
  /// cross-shard buffering (at most one lookahead window of traffic).
  [[nodiscard]] std::size_t max_backlog() const noexcept { return max_backlog_; }

  /// Shared sequencer for MetricsRegistry entries: each first registration of
  /// a metric name, on any shard, draws one ticket. Because entity
  /// construction happens in the same global order at every shard count, the
  /// merged registry ordered by first ticket is identical at every shard
  /// count (and to a single-engine run).
  [[nodiscard]] std::atomic<std::uint64_t>* metrics_sequencer() noexcept {
    return &metrics_seq_;
  }

 private:
  struct Mailbox {
    std::mutex mu;
    std::vector<Envelope> items;
  };

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::uint32_t> shard_by_id_;
  std::uint64_t next_id_ = 0;
  std::size_t max_backlog_ = 0;
  std::atomic<std::uint64_t> metrics_seq_{0};
};

}  // namespace faucets::sim
