// SimContext: the single seam through which entities reach the simulation
// substrate.
//
// One run of the simulated grid needs an event Engine, a Network fabric, the
// observability bundle (trace ring + metrics registry + span tracker), and a
// deterministic RNG. Before this type existed every entity constructor took a
// raw Engine&/Network& pair and tests wired the pieces by hand; SimContext
// bundles them so a constructor signature is one reference, and per-run
// instrumentation has an obvious home.
#pragma once

#include <cstdint>

#include "src/obs/observability.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/entity.hpp"
#include "src/sim/network.hpp"
#include "src/sim/shard.hpp"
#include "src/util/rng.hpp"

namespace faucets::sim {

/// Bounded typed trace store; see src/obs/trace.hpp.
using TraceSink = obs::TraceBuffer;

/// Tunables for one simulation run.
struct SimConfig {
  NetworkConfig network{};
  /// Seed of the run RNG; the default matches faucets::Rng's default.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  /// Capacity of the bounded trace ring (rounded up to a power of two).
  std::size_t trace_capacity = 1 << 16;
  /// Sharded runs: the shared router and this context's shard id. Null
  /// router (the default) selects the single-engine path everywhere.
  ShardRouter* router = nullptr;
  std::uint32_t shard = 0;
};

/// Owns the Engine, Network, observability bundle, and run RNG of one
/// simulation; the Observability is constructed before the Network because
/// the Network records drops into the trace ring.
class SimContext {
 public:
  SimContext() : SimContext(SimConfig{}) {}
  explicit SimContext(SimConfig config)
      : obs_(obs::ObservabilityConfig{
            .trace_capacity = config.trace_capacity,
            .metrics_sequencer =
                config.router != nullptr ? config.router->metrics_sequencer()
                                         : nullptr}),
        network_(engine_, config.network, &obs_, config.router, config.shard),
        rng_(config.seed) {
    if (config.router != nullptr) engine_.enable_deterministic_ties();
    // Trace records carry the executing event's canonical stamp so merged
    // per-shard views sort identically at every shard count.
    obs_.trace().set_stamp_source(
        [](const void* src) {
          const auto st = static_cast<const Engine*>(src)->exec_stamp();
          return obs::TraceStamp{st.rank, st.creator, st.cseq};
        },
        &engine_);
  }
  explicit SimContext(NetworkConfig network) : SimContext(SimConfig{.network = network}) {}

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  [[nodiscard]] Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const Engine& engine() const noexcept { return engine_; }
  [[nodiscard]] Network& network() noexcept { return network_; }
  [[nodiscard]] const Network& network() const noexcept { return network_; }
  [[nodiscard]] obs::Observability& obs() noexcept { return obs_; }
  [[nodiscard]] const obs::Observability& obs() const noexcept { return obs_; }
  [[nodiscard]] obs::TraceBuffer& trace() noexcept { return obs_.trace(); }
  [[nodiscard]] const obs::TraceBuffer& trace() const noexcept { return obs_.trace(); }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return obs_.metrics(); }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return obs_.metrics();
  }
  [[nodiscard]] obs::SpanTracker& spans() noexcept { return obs_.spans(); }
  [[nodiscard]] const obs::SpanTracker& spans() const noexcept { return obs_.spans(); }
  [[nodiscard]] obs::Sampler& sampler() noexcept { return obs_.sampler(); }
  [[nodiscard]] const obs::Sampler& sampler() const noexcept { return obs_.sampler(); }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  [[nodiscard]] SimTime now() const noexcept { return engine_.now(); }

 private:
  Engine engine_;
  obs::Observability obs_;
  Network network_;
  Rng rng_;
};

// Defined here rather than in entity.hpp so entity.hpp need not include the
// Network/obs headers (SimContext is only forward-declared there).
inline Entity::Entity(std::string name, SimContext& ctx)
    : name_(std::move(name)),
      ctx_(&ctx),
      engine_(&ctx.engine()),
      network_(&ctx.network()) {}

}  // namespace faucets::sim
