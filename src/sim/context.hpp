// SimContext: the single seam through which entities reach the simulation
// substrate.
//
// One run of the simulated grid needs an event Engine, a Network fabric, a
// TraceSink, and a deterministic RNG. Before this type existed every entity
// constructor took a raw Engine&/Network& pair and tests wired the pieces by
// hand; SimContext bundles them so a constructor signature is one reference,
// and future per-run instrumentation (fault injection, metrics taps) has an
// obvious home.
#pragma once

#include <cstdint>

#include "src/sim/engine.hpp"
#include "src/sim/entity.hpp"
#include "src/sim/network.hpp"
#include "src/sim/trace.hpp"
#include "src/util/rng.hpp"

namespace faucets::sim {

/// Tunables for one simulation run.
struct SimConfig {
  NetworkConfig network{};
  /// Seed of the run RNG; the default matches faucets::Rng's default.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  /// Capacity of the bounded trace buffer.
  std::size_t trace_capacity = 1 << 16;
};

/// Owns the Engine, Network, TraceSink, and run RNG of one simulation, in
/// that construction order (the Network records drops into the trace).
class SimContext {
 public:
  SimContext() : SimContext(SimConfig{}) {}
  explicit SimContext(SimConfig config)
      : trace_(config.trace_capacity),
        network_(engine_, config.network, &trace_),
        rng_(config.seed) {}
  explicit SimContext(NetworkConfig network) : SimContext(SimConfig{.network = network}) {}

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  [[nodiscard]] Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const Engine& engine() const noexcept { return engine_; }
  [[nodiscard]] Network& network() noexcept { return network_; }
  [[nodiscard]] const Network& network() const noexcept { return network_; }
  [[nodiscard]] TraceSink& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceSink& trace() const noexcept { return trace_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  [[nodiscard]] SimTime now() const noexcept { return engine_.now(); }

 private:
  Engine engine_;
  TraceSink trace_;
  Network network_;
  Rng rng_;
};

// Defined here rather than in entity.hpp so entity.hpp need not include the
// Network/Trace headers (SimContext is only forward-declared there).
inline Entity::Entity(std::string name, SimContext& ctx)
    : name_(std::move(name)),
      ctx_(&ctx),
      engine_(&ctx.engine()),
      network_(&ctx.network()) {}

}  // namespace faucets::sim
