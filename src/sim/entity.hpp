// Entity and Message: the object model of the simulated grid.
//
// Each component of the Faucets architecture (Central Server, Faucets
// Daemons, clients, AppSpector) is an Entity registered with the Network.
// Entities communicate exclusively by messages, mirroring the socket
// protocol of the real system. Messages carry a MessageKind discriminant so
// receivers dispatch with a switch instead of a dynamic_cast chain, and the
// network keeps per-kind traffic counters.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <string_view>

#include "src/sim/engine.hpp"
#include "src/util/ids.hpp"

namespace faucets::sim {

/// Discriminant for every concrete protocol message. The names mirror the
/// wire tags of the real Faucets socket protocol; `kCustom` is reserved for
/// ad-hoc messages in tests and examples.
enum class MessageKind : std::uint8_t {
  kLogin = 0,
  kLoginAck,
  kDirectoryRequest,
  kDirectoryReply,
  kRequestForBids,
  kBid,
  kAward,
  kAwardAck,
  kReserve,
  kReserveAck,
  kCommit,
  kUpload,
  kEvicted,
  kJobDone,
  kSubmit,
  kSubmitAck,
  kPeerDirectoryRequest,
  kPeerDirectoryReply,
  kRegisterDaemon,
  kRegisterAck,
  kPoll,
  kPollReply,
  kAuthRequest,
  kAuthReply,
  kSettled,
  kMonitorRegister,
  kMonitorUpdate,
  kWatch,
  kWatchReply,
  kCustom,
  // Broker-to-broker peering (sharded runs): an origin broker forwards an
  // RFB round for a remote shard's servers to that shard's broker, which
  // answers with its collected bids. Appended after kCustom so existing
  // per-kind counter positions (and traces carrying raw kind bytes) keep
  // their values.
  kPeerRfb,
  kPeerRfbReply,
};

/// Number of distinct kinds, for per-kind counter arrays.
inline constexpr std::size_t kMessageKindCount =
    static_cast<std::size_t>(MessageKind::kPeerRfbReply) + 1;

/// Wire tag of a kind ("RFB", "BID", ...), for traces and reports.
[[nodiscard]] constexpr std::string_view to_string(MessageKind kind) noexcept {
  switch (kind) {
    case MessageKind::kLogin: return "LOGIN";
    case MessageKind::kLoginAck: return "LOGIN_ACK";
    case MessageKind::kDirectoryRequest: return "DIR_REQ";
    case MessageKind::kDirectoryReply: return "DIR_ACK";
    case MessageKind::kRequestForBids: return "RFB";
    case MessageKind::kBid: return "BID";
    case MessageKind::kAward: return "AWARD";
    case MessageKind::kAwardAck: return "AWARD_ACK";
    case MessageKind::kReserve: return "RESERVE";
    case MessageKind::kReserveAck: return "RESERVE_ACK";
    case MessageKind::kCommit: return "COMMIT";
    case MessageKind::kUpload: return "UPLOAD";
    case MessageKind::kEvicted: return "EVICTED";
    case MessageKind::kJobDone: return "JOB_DONE";
    case MessageKind::kSubmit: return "SUBMIT";
    case MessageKind::kSubmitAck: return "SUBMIT_ACK";
    case MessageKind::kPeerDirectoryRequest: return "PEER_DIR";
    case MessageKind::kPeerDirectoryReply: return "PEER_DIR_ACK";
    case MessageKind::kRegisterDaemon: return "REGISTER";
    case MessageKind::kRegisterAck: return "REGISTER_ACK";
    case MessageKind::kPoll: return "POLL";
    case MessageKind::kPollReply: return "POLL_ACK";
    case MessageKind::kAuthRequest: return "AUTH_REQ";
    case MessageKind::kAuthReply: return "AUTH_ACK";
    case MessageKind::kSettled: return "SETTLED";
    case MessageKind::kMonitorRegister: return "AS_REG";
    case MessageKind::kMonitorUpdate: return "AS_UPDATE";
    case MessageKind::kWatch: return "WATCH";
    case MessageKind::kWatchReply: return "WATCH_ACK";
    case MessageKind::kCustom: return "CUSTOM";
    case MessageKind::kPeerRfb: return "PEER_RFB";
    case MessageKind::kPeerRfbReply: return "PEER_RFB_ACK";
  }
  return "?";
}

/// Base class for everything sent over the simulated network. Concrete
/// protocol messages (request-for-bids, bids, awards, ...) derive from this,
/// expose `static constexpr MessageKind kKind`, and are dispatched by kind
/// in each entity's on_message.
struct Message {
  virtual ~Message() = default;

  /// The discriminant used for dispatch and per-kind accounting.
  [[nodiscard]] virtual MessageKind kind() const noexcept = 0;

  /// Human-readable message kind for traces ("RFB", "BID", ...).
  [[nodiscard]] std::string_view kind_name() const noexcept { return to_string(kind()); }

  /// Payload size in bytes, used by the network's bandwidth model. The
  /// default approximates a small control message.
  [[nodiscard]] virtual std::size_t size_bytes() const noexcept { return 256; }

  EntityId from;
  EntityId to;
  SimTime sent_at = 0.0;
};

/// Checked downcast after a kind test: the caller has already switched on
/// `msg.kind()`, so the static type is known.
template <typename T>
[[nodiscard]] const T& message_cast(const Message& msg) noexcept {
  assert(msg.kind() == T::kKind && "message_cast: kind does not match target type");
  return static_cast<const T&>(msg);
}

using MessagePtr = std::unique_ptr<Message>;

class Network;
class SimContext;

/// A simulated process: owns no thread, just reacts to delivered messages
/// and timers scheduled on the shared Engine.
class Entity {
 public:
  /// Defined in context.hpp, next to SimContext.
  Entity(std::string name, SimContext& ctx);
  virtual ~Entity() = default;
  Entity(const Entity&) = delete;
  Entity& operator=(const Entity&) = delete;

  [[nodiscard]] EntityId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] SimContext& context() const noexcept { return *ctx_; }
  [[nodiscard]] Engine& engine() const noexcept { return *engine_; }
  [[nodiscard]] SimTime now() const noexcept { return engine_->now(); }

  /// Called by the Network when a message addressed to this entity arrives.
  virtual void on_message(const Message& msg) = 0;

  /// Coarse category byte for host-time profiler attribution (the value
  /// space is obs::ProfClass; kept as a raw byte so sim stays free of obs
  /// profiler types). Defaults to 0 = "other"; GridSystem tags the entities
  /// it stands up.
  [[nodiscard]] std::uint8_t profile_class() const noexcept {
    return prof_class_;
  }
  void set_profile_class(std::uint8_t c) noexcept { prof_class_ = c; }

 protected:
  [[nodiscard]] Network* network() const noexcept { return network_; }

 private:
  friend class Network;
  std::string name_;
  SimContext* ctx_;
  Engine* engine_;
  Network* network_;
  EntityId id_;
  std::uint8_t prof_class_ = 0;
};

}  // namespace faucets::sim
