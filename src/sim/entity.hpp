// Entity and Message: the object model of the simulated grid.
//
// Each component of the Faucets architecture (Central Server, Faucets
// Daemons, clients, AppSpector) is an Entity registered with the Network.
// Entities communicate exclusively by messages, mirroring the socket
// protocol of the real system.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "src/sim/engine.hpp"
#include "src/util/ids.hpp"

namespace faucets::sim {

/// Base class for everything sent over the simulated network. Concrete
/// protocol messages (request-for-bids, bids, awards, ...) derive from this
/// and are dispatched by type in each entity's on_message.
struct Message {
  virtual ~Message() = default;

  /// Human-readable message kind for traces ("RFB", "BID", ...).
  [[nodiscard]] virtual std::string_view kind() const noexcept = 0;

  /// Payload size in bytes, used by the network's bandwidth model. The
  /// default approximates a small control message.
  [[nodiscard]] virtual std::size_t size_bytes() const noexcept { return 256; }

  EntityId from;
  EntityId to;
  SimTime sent_at = 0.0;
};

using MessagePtr = std::unique_ptr<Message>;

class Network;

/// A simulated process: owns no thread, just reacts to delivered messages
/// and timers scheduled on the shared Engine.
class Entity {
 public:
  Entity(std::string name, Engine& engine) : name_(std::move(name)), engine_(&engine) {}
  virtual ~Entity() = default;
  Entity(const Entity&) = delete;
  Entity& operator=(const Entity&) = delete;

  [[nodiscard]] EntityId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Engine& engine() const noexcept { return *engine_; }
  [[nodiscard]] SimTime now() const noexcept { return engine_->now(); }

  /// Called by the Network when a message addressed to this entity arrives.
  virtual void on_message(const Message& msg) = 0;

 protected:
  [[nodiscard]] Network* network() const noexcept { return network_; }

 private:
  friend class Network;
  std::string name_;
  Engine* engine_;
  Network* network_ = nullptr;
  EntityId id_;
};

}  // namespace faucets::sim
