#include "src/sim/shard.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace faucets::sim {

namespace {

/// Unique total order over envelopes: arrival time, then the sender-side
/// send time (the rank a single heap would have used), then the canonical
/// creation stamp. No component depends on OS scheduling or shard count.
bool envelope_before(const ShardRouter::Envelope& a, const ShardRouter::Envelope& b) {
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  if (a.sent_at != b.sent_at) return a.sent_at < b.sent_at;
  if (a.creator != b.creator) return a.creator < b.creator;
  return a.cseq < b.cseq;
}

}  // namespace

ShardRouter::ShardRouter(std::size_t shard_count) {
  assert(shard_count >= 1);
  mailboxes_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

EntityId ShardRouter::assign_id(std::size_t shard) {
  const EntityId id{next_id_++};
  shard_by_id_.push_back(static_cast<std::uint32_t>(shard));
  return id;
}

void ShardRouter::post(std::size_t dst_shard, Envelope env) {
  Mailbox& box = *mailboxes_[dst_shard];
  std::lock_guard<std::mutex> lock(box.mu);
  box.items.push_back(std::move(env));
}

void ShardRouter::drain(std::size_t dst_shard, std::vector<Envelope>& staged,
                        std::size_t& consumed) {
  if (consumed > 0) {
    staged.erase(staged.begin(),
                 staged.begin() + static_cast<std::ptrdiff_t>(consumed));
    consumed = 0;
  }
  Mailbox& box = *mailboxes_[dst_shard];
  std::vector<Envelope> incoming;
  {
    std::lock_guard<std::mutex> lock(box.mu);
    incoming.swap(box.items);
  }
  if (incoming.empty()) return;
  max_backlog_ = std::max(max_backlog_, incoming.size());
  staged.insert(staged.end(), std::make_move_iterator(incoming.begin()),
                std::make_move_iterator(incoming.end()));
  // Leftover staged entries all sort before the new arrivals is *not*
  // guaranteed (a slow shard may still hold an envelope whose arrival lies
  // past the new batch's heads), so re-sort the whole staging list; it is
  // bounded by a couple of lookahead windows of traffic.
  std::sort(staged.begin(), staged.end(), envelope_before);
}

}  // namespace faucets::sim
