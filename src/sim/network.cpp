#include "src/sim/network.hpp"

#include <utility>

#include "src/obs/observability.hpp"
#include "src/obs/profiler.hpp"
#include "src/sim/shard.hpp"

namespace faucets::sim {

// Kind slot 0 is reserved for timer/no-message events; every MessageKind
// must fit in the lanes' fixed attribution arrays.
static_assert(kMessageKindCount + 1 <= obs::ProfilerLane::kKindSlots,
              "grow ProfilerLane::kKindSlots to fit MessageKind");

Network::Network(Engine& engine, NetworkConfig config, obs::Observability* obs,
                 ShardRouter* router, std::uint32_t shard)
    : engine_(&engine), config_(config), obs_(obs), router_(router), shard_(shard) {
  register_metrics();
}

void Network::set_observability(obs::Observability* obs) {
  obs_ = obs;
  sent_ctr_ = delivered_ctr_ = dropped_ctr_ = bytes_ctr_ = nullptr;
  register_metrics();
}

void Network::register_metrics() {
  if (obs_ == nullptr) return;
  auto& m = obs_->metrics();
  sent_ctr_ = &m.counter("faucets_net_messages_sent_total",
                         "Messages put on the wire");
  delivered_ctr_ = &m.counter("faucets_net_messages_delivered_total",
                              "Messages handed to a receiver");
  dropped_ctr_ = &m.counter("faucets_net_messages_dropped_total",
                            "Messages lost to a detached sender or receiver");
  bytes_ctr_ = &m.counter("faucets_net_bytes_sent_total",
                          "Payload bytes put on the wire");
}

EntityId Network::attach(Entity& entity) {
  // In a sharded run the router owns the id counter, so entity ids match a
  // single-engine construction no matter how entities spread across shards.
  const EntityId id = router_ != nullptr ? router_->assign_id(shard_)
                                         : EntityId{next_id_++};
  entity.id_ = id;
  entity.network_ = this;
  entities_.emplace(id, &entity);
  // The rest of the entity's constructor runs under its own attribution, so
  // timers armed there carry a shard-count-independent creation stamp.
  engine_->set_current_entity(id.value());
  return id;
}

void Network::detach(EntityId id) { entities_.erase(id); }

void Network::reattach(Entity& entity) {
  entity.network_ = this;
  entities_.emplace(entity.id_, &entity);
  engine_->set_current_entity(entity.id_.value());
}

Entity* Network::find(EntityId id) const {
  auto it = entities_.find(id);
  return it == entities_.end() ? nullptr : it->second;
}

double Network::delay(EntityId from, EntityId to, std::size_t bytes) const noexcept {
  double d = from == to ? config_.local_latency : config_.base_latency;
  if (config_.bandwidth > 0) d += static_cast<double>(bytes) / config_.bandwidth;
  return d;
}

void Network::drop(MessageKind kind, EntityId at, EntityId peer,
                   obs::DropReason reason) {
  ++messages_dropped_;
  ++dropped_by_reason_[static_cast<std::size_t>(reason)];
  if (obs_ != nullptr) {
    obs_->trace().record(obs::net_event(engine_->now(), at, peer,
                                        static_cast<std::uint8_t>(kind), reason));
    dropped_ctr_->inc();
  }
}

void Network::send(const Entity& from, EntityId to, MessagePtr msg) {
  const MessageKind kind = msg->kind();
  if (entities_.find(from.id()) == entities_.end()) {
    // A detached (crashed) entity cannot put anything on the wire.
    drop(kind, from.id(), to, obs::DropReason::kSenderDetached);
    return;
  }
  msg->from = from.id();
  msg->to = to;
  msg->sent_at = engine_->now();
  ++messages_sent_;
  ++sent_by_kind_[static_cast<std::size_t>(kind)];
  ++per_entity_traffic_[from.id()];
  ++per_entity_traffic_[to];
  bytes_sent_ += msg->size_bytes();
  if (sent_ctr_ != nullptr) {
    sent_ctr_->inc();
    bytes_ctr_->inc(msg->size_bytes());
  }
  double d = delay(from.id(), to, msg->size_bytes());
  // Fault injection happens after the sent-side accounting: a lost message
  // was genuinely put on the wire, it just never arrives.
  const FaultInjector::Verdict verdict = faults_.inspect(from.id(), to, engine_->now());
  if (verdict.drop) {
    drop(kind, from.id(), to, verdict.reason);
    return;
  }
  d += verdict.extra_delay;
  if (router_ != nullptr) {
    const std::size_t dst = router_->shard_of(to);
    if (dst != shard_) {
      // Cross-shard: all sent-side accounting already happened above, on the
      // sending shard; the receiving shard performs delivery accounting when
      // the envelope is drained at a lookahead barrier. The arrival time
      // carries the full modeled delay, so d >= base_latency bounds how soon
      // the destination can observe it — the lookahead guarantee.
      const Engine::CreationStamp st = engine_->take_creation_stamp();
      router_->post(dst, ShardRouter::Envelope{engine_->now() + d, engine_->now(),
                                               st.creator, st.cseq, kind,
                                               std::move(msg)});
      return;
    }
  }
  // SmallFunction accepts move-only captures, so the message rides in the
  // delivery event itself — no shared_ptr box, no extra allocation.
  engine_->schedule_after(d, [this, kind, msg = std::move(msg)]() mutable {
    deliver(kind, std::move(msg));
  });
}

void Network::deliver(MessageKind kind, MessagePtr msg) {
  Entity* target = find(msg->to);
  if (target == nullptr) {
    drop(kind, msg->to, msg->from, obs::DropReason::kReceiverDetached);
    return;
  }
  ++messages_delivered_;
  ++delivered_by_kind_[static_cast<std::size_t>(kind)];
  if (delivered_ctr_ != nullptr) delivered_ctr_->inc();
#if FAUCETS_PROFILE
  if (prof_ != nullptr) {
    prof_->set_event_tag(1 + static_cast<std::size_t>(kind),
                         target->profile_class());
  }
#endif
  engine_->set_current_entity(msg->to.value());
  target->on_message(*msg);
}

void Network::deliver_envelope(MessageKind kind, MessagePtr msg) {
  deliver(kind, std::move(msg));
}

std::uint64_t Network::traffic_of(EntityId id) const {
  auto it = per_entity_traffic_.find(id);
  return it == per_entity_traffic_.end() ? 0 : it->second;
}

void Network::reset_counters() noexcept {
  messages_sent_ = messages_delivered_ = messages_dropped_ = bytes_sent_ = 0;
  sent_by_kind_.fill(0);
  delivered_by_kind_.fill(0);
  dropped_by_reason_.fill(0);
  per_entity_traffic_.clear();
  if (sent_ctr_ != nullptr) {
    sent_ctr_->reset();
    delivered_ctr_->reset();
    dropped_ctr_->reset();
    bytes_ctr_->reset();
  }
}

}  // namespace faucets::sim
