#include "src/sim/network.hpp"

#include <string>
#include <utility>

#include "src/sim/trace.hpp"

namespace faucets::sim {

Network::Network(Engine& engine, NetworkConfig config, TraceRecorder* trace)
    : engine_(&engine), config_(config), trace_(trace) {}

EntityId Network::attach(Entity& entity) {
  const EntityId id{next_id_++};
  entity.id_ = id;
  entity.network_ = this;
  entities_.emplace(id, &entity);
  return id;
}

void Network::detach(EntityId id) { entities_.erase(id); }

Entity* Network::find(EntityId id) const {
  auto it = entities_.find(id);
  return it == entities_.end() ? nullptr : it->second;
}

double Network::delay(EntityId from, EntityId to, std::size_t bytes) const noexcept {
  double d = from == to ? config_.local_latency : config_.base_latency;
  if (config_.bandwidth > 0) d += static_cast<double>(bytes) / config_.bandwidth;
  return d;
}

void Network::drop(MessageKind kind, EntityId from, EntityId to, std::string_view why) {
  ++messages_dropped_;
  if (trace_ != nullptr) {
    std::string detail = "drop ";
    detail += to_string(kind);
    detail += " from=";
    detail += from.valid() ? std::to_string(from.value()) : "<invalid>";
    detail += ": ";
    detail += why;
    trace_->record(engine_->now(), to, "net", std::move(detail));
  }
}

void Network::send(const Entity& from, EntityId to, MessagePtr msg) {
  const MessageKind kind = msg->kind();
  if (entities_.find(from.id()) == entities_.end()) {
    // A detached (crashed) entity cannot put anything on the wire.
    drop(kind, from.id(), to, "sender detached");
    return;
  }
  msg->from = from.id();
  msg->to = to;
  msg->sent_at = engine_->now();
  ++messages_sent_;
  ++sent_by_kind_[static_cast<std::size_t>(kind)];
  ++per_entity_traffic_[from.id()];
  ++per_entity_traffic_[to];
  bytes_sent_ += msg->size_bytes();
  const double d = delay(from.id(), to, msg->size_bytes());
  // SmallFunction accepts move-only captures, so the message rides in the
  // delivery event itself — no shared_ptr box, no extra allocation.
  engine_->schedule_after(d, [this, to, kind, msg = std::move(msg)]() {
    Entity* target = find(to);
    if (target == nullptr) {
      drop(kind, msg->from, to, "receiver detached");
      return;
    }
    ++messages_delivered_;
    ++delivered_by_kind_[static_cast<std::size_t>(kind)];
    target->on_message(*msg);
  });
}

std::uint64_t Network::traffic_of(EntityId id) const {
  auto it = per_entity_traffic_.find(id);
  return it == per_entity_traffic_.end() ? 0 : it->second;
}

void Network::reset_counters() noexcept {
  messages_sent_ = messages_delivered_ = messages_dropped_ = bytes_sent_ = 0;
  sent_by_kind_.fill(0);
  delivered_by_kind_.fill(0);
  per_entity_traffic_.clear();
}

}  // namespace faucets::sim
