#include "src/sim/network.hpp"

#include <utility>

namespace faucets::sim {

Network::Network(Engine& engine, NetworkConfig config)
    : engine_(&engine), config_(config) {}

EntityId Network::attach(Entity& entity) {
  const EntityId id{next_id_++};
  entity.id_ = id;
  entity.network_ = this;
  entities_.emplace(id, &entity);
  return id;
}

void Network::detach(EntityId id) { entities_.erase(id); }

Entity* Network::find(EntityId id) const {
  auto it = entities_.find(id);
  return it == entities_.end() ? nullptr : it->second;
}

double Network::delay(EntityId from, EntityId to, std::size_t bytes) const noexcept {
  double d = from == to ? config_.local_latency : config_.base_latency;
  if (config_.bandwidth > 0) d += static_cast<double>(bytes) / config_.bandwidth;
  return d;
}

void Network::send(const Entity& from, EntityId to, MessagePtr msg) {
  if (entities_.find(from.id()) == entities_.end()) {
    // A detached (crashed) entity cannot put anything on the wire.
    ++messages_dropped_;
    return;
  }
  msg->from = from.id();
  msg->to = to;
  msg->sent_at = engine_->now();
  ++messages_sent_;
  ++per_entity_traffic_[from.id()];
  ++per_entity_traffic_[to];
  bytes_sent_ += msg->size_bytes();
  const double d = delay(from.id(), to, msg->size_bytes());
  // Shared ownership lets the lambda stay copyable for std::function.
  std::shared_ptr<Message> shared{std::move(msg)};
  engine_->schedule_after(d, [this, to, shared = std::move(shared)]() {
    Entity* target = find(to);
    if (target == nullptr) {
      ++messages_dropped_;
      return;
    }
    ++messages_delivered_;
    target->on_message(*shared);
  });
}

std::uint64_t Network::traffic_of(EntityId id) const {
  auto it = per_entity_traffic_.find(id);
  return it == per_entity_traffic_.end() ? 0 : it->second;
}

void Network::reset_counters() noexcept {
  messages_sent_ = messages_delivered_ = messages_dropped_ = bytes_sent_ = 0;
  per_entity_traffic_.clear();
}

}  // namespace faucets::sim
