#include "src/sim/network.hpp"

#include <utility>

#include "src/obs/observability.hpp"

namespace faucets::sim {

Network::Network(Engine& engine, NetworkConfig config, obs::Observability* obs)
    : engine_(&engine), config_(config), obs_(obs) {
  register_metrics();
}

void Network::set_observability(obs::Observability* obs) {
  obs_ = obs;
  sent_ctr_ = delivered_ctr_ = dropped_ctr_ = bytes_ctr_ = nullptr;
  register_metrics();
}

void Network::register_metrics() {
  if (obs_ == nullptr) return;
  auto& m = obs_->metrics();
  sent_ctr_ = &m.counter("faucets_net_messages_sent_total",
                         "Messages put on the wire");
  delivered_ctr_ = &m.counter("faucets_net_messages_delivered_total",
                              "Messages handed to a receiver");
  dropped_ctr_ = &m.counter("faucets_net_messages_dropped_total",
                            "Messages lost to a detached sender or receiver");
  bytes_ctr_ = &m.counter("faucets_net_bytes_sent_total",
                          "Payload bytes put on the wire");
}

EntityId Network::attach(Entity& entity) {
  const EntityId id{next_id_++};
  entity.id_ = id;
  entity.network_ = this;
  entities_.emplace(id, &entity);
  return id;
}

void Network::detach(EntityId id) { entities_.erase(id); }

void Network::reattach(Entity& entity) {
  entity.network_ = this;
  entities_.emplace(entity.id_, &entity);
}

Entity* Network::find(EntityId id) const {
  auto it = entities_.find(id);
  return it == entities_.end() ? nullptr : it->second;
}

double Network::delay(EntityId from, EntityId to, std::size_t bytes) const noexcept {
  double d = from == to ? config_.local_latency : config_.base_latency;
  if (config_.bandwidth > 0) d += static_cast<double>(bytes) / config_.bandwidth;
  return d;
}

void Network::drop(MessageKind kind, EntityId at, EntityId peer,
                   obs::DropReason reason) {
  ++messages_dropped_;
  ++dropped_by_reason_[static_cast<std::size_t>(reason)];
  if (obs_ != nullptr) {
    obs_->trace().record(obs::net_event(engine_->now(), at, peer,
                                        static_cast<std::uint8_t>(kind), reason));
    dropped_ctr_->inc();
  }
}

void Network::send(const Entity& from, EntityId to, MessagePtr msg) {
  const MessageKind kind = msg->kind();
  if (entities_.find(from.id()) == entities_.end()) {
    // A detached (crashed) entity cannot put anything on the wire.
    drop(kind, from.id(), to, obs::DropReason::kSenderDetached);
    return;
  }
  msg->from = from.id();
  msg->to = to;
  msg->sent_at = engine_->now();
  ++messages_sent_;
  ++sent_by_kind_[static_cast<std::size_t>(kind)];
  ++per_entity_traffic_[from.id()];
  ++per_entity_traffic_[to];
  bytes_sent_ += msg->size_bytes();
  if (sent_ctr_ != nullptr) {
    sent_ctr_->inc();
    bytes_ctr_->inc(msg->size_bytes());
  }
  double d = delay(from.id(), to, msg->size_bytes());
  // Fault injection happens after the sent-side accounting: a lost message
  // was genuinely put on the wire, it just never arrives.
  const FaultInjector::Verdict verdict = faults_.inspect(from.id(), to, engine_->now());
  if (verdict.drop) {
    drop(kind, from.id(), to, verdict.reason);
    return;
  }
  d += verdict.extra_delay;
  // SmallFunction accepts move-only captures, so the message rides in the
  // delivery event itself — no shared_ptr box, no extra allocation.
  engine_->schedule_after(d, [this, to, kind, msg = std::move(msg)]() {
    Entity* target = find(to);
    if (target == nullptr) {
      drop(kind, to, msg->from, obs::DropReason::kReceiverDetached);
      return;
    }
    ++messages_delivered_;
    ++delivered_by_kind_[static_cast<std::size_t>(kind)];
    if (delivered_ctr_ != nullptr) delivered_ctr_->inc();
    target->on_message(*msg);
  });
}

std::uint64_t Network::traffic_of(EntityId id) const {
  auto it = per_entity_traffic_.find(id);
  return it == per_entity_traffic_.end() ? 0 : it->second;
}

void Network::reset_counters() noexcept {
  messages_sent_ = messages_delivered_ = messages_dropped_ = bytes_sent_ = 0;
  sent_by_kind_.fill(0);
  delivered_by_kind_.fill(0);
  dropped_by_reason_.fill(0);
  per_entity_traffic_.clear();
  if (sent_ctr_ != nullptr) {
    sent_ctr_->reset();
    delivered_ctr_->reset();
    dropped_ctr_->reset();
    bytes_ctr_->reset();
  }
}

}  // namespace faucets::sim
