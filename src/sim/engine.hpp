// Deterministic discrete-event simulation engine.
//
// Section 5.4 of the Faucets paper describes a simulation system in which
// every entity of the grid — clients, Compute Servers, the Faucets Server,
// schedulers with their bid generators, and applications — is an object, and
// discrete-event simulation is carried out over job-submission patterns.
// This engine is that substrate: a single-threaded, deterministic event
// queue ordered by (time, sequence number).
//
// Events live in a slab of pooled slots recycled through a free list, and
// the queue is an indexed 4-ary heap with back-pointers, so cancel()
// removes the event in O(log n) instead of leaving a tombstone. The
// ordering keys (time, seq) are stored inside the heap entries themselves:
// sift comparisons stay within the contiguous heap array instead of chasing
// slot indices into the slab, which is what makes million-event queues fast
// (each slab lookup is a cache miss at that size). The slab entry is left
// at exactly one cache line: callable + generation + back-pointer.
// Handles are {slot, generation} pairs: firing or cancelling bumps the
// slot's generation, so a stale handle can neither cancel nor report active
// for a recycled slot. Closures are stored in a SmallFunction, so scheduling
// a timer with a small capture performs zero heap allocations once the pool
// is warm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/callable.hpp"

namespace faucets::sim {

/// Simulated time in seconds since the start of the simulation.
using SimTime = double;

class Engine;

/// Handle to a scheduled event; allows cancellation (e.g. a server's poll
/// timer when it deregisters). Default-constructed handles are inert.
/// A handle is only meaningful while the Engine that issued it is alive.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly, and
  /// a no-op once the event fired or the slot was recycled.
  void cancel() noexcept;

  /// True while the event is still queued: not yet fired, not cancelled.
  [[nodiscard]] bool active() const noexcept;

 private:
  friend class Engine;
  EventHandle(Engine* engine, std::uint32_t slot, std::uint32_t generation) noexcept
      : engine_(engine), slot_(slot), generation_(generation) {}

  Engine* engine_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

/// The event queue. Events scheduled for the same instant fire in the order
/// they were scheduled, which makes every run bit-reproducible.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute time `when` (>= now). Scheduling in
  /// the past is clamped to `now` rather than rejected: entities routinely
  /// react "immediately".
  EventHandle schedule_at(SimTime when, SmallFunction fn);

  /// Schedule `fn` after a relative delay.
  EventHandle schedule_after(SimTime delay, SmallFunction fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the queue drains or `until` is reached (whichever first).
  /// Returns the number of events executed.
  std::uint64_t run(SimTime until = kForever);

  /// Execute at most one pending event. Returns false if the queue is empty
  /// or the next event lies beyond `until`.
  bool step(SimTime until = kForever);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Total slots ever allocated in the pool (monotone; slot reuse keeps this
  /// near the high-water mark of concurrently pending events).
  [[nodiscard]] std::size_t pool_slots() const noexcept { return slots_.size(); }

  static constexpr SimTime kForever = 1e300;

 private:
  friend class EventHandle;

  struct Slot {
    std::uint32_t generation = 0;
    SmallFunction fn;
  };

  /// Slot numbers fit 24 bits (16M concurrently pending events); the
  /// insertion sequence takes the upper 40 bits of the packed key, so a
  /// plain integer compare breaks time ties in scheduling order.
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;

  /// Heap entry carrying the ordering keys, so comparisons never touch the
  /// slab: 16 bytes, four children per cache line. 4-ary layout: parent
  /// (i-1)/4, children 4i+1 .. 4i+4.
  struct HeapEntry {
    SimTime time;
    std::uint64_t key;  // (seq << kSlotBits) | slot

    [[nodiscard]] std::uint32_t slot() const noexcept {
      return static_cast<std::uint32_t>(key) & kSlotMask;
    }
  };

  [[nodiscard]] bool slot_active(std::uint32_t slot, std::uint32_t generation) const noexcept {
    return slot < slots_.size() && slots_[slot].generation == generation &&
           pos_[slot] >= 0;
  }
  void cancel_slot(std::uint32_t slot, std::uint32_t generation) noexcept;

  [[nodiscard]] static bool earlier(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }
  void place(const HeapEntry& e, std::size_t i) noexcept {
    heap_[i] = e;
    pos_[e.slot()] = static_cast<std::int32_t>(i);
  }
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  void remove_heap_at(std::size_t pos) noexcept;
  void pop_root() noexcept;
  void retire_slot(std::uint32_t slot) noexcept;

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Slot> slots_;         // slab of pooled callables
  std::vector<std::int32_t> pos_;   // heap position per slot; -1 = not queued
  std::vector<std::uint32_t> free_; // recycled slot numbers
  std::vector<HeapEntry> heap_;     // indexed 4-ary heap
};

inline void EventHandle::cancel() noexcept {
  if (engine_ != nullptr) engine_->cancel_slot(slot_, generation_);
}

inline bool EventHandle::active() const noexcept {
  return engine_ != nullptr && engine_->slot_active(slot_, generation_);
}

}  // namespace faucets::sim
