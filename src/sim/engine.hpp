// Deterministic discrete-event simulation engine.
//
// Section 5.4 of the Faucets paper describes a simulation system in which
// every entity of the grid — clients, Compute Servers, the Faucets Server,
// schedulers with their bid generators, and applications — is an object, and
// discrete-event simulation is carried out over job-submission patterns.
// This engine is that substrate: a single-threaded, deterministic event
// queue ordered by (time, sequence number).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace faucets::sim {

/// Simulated time in seconds since the start of the simulation.
using SimTime = double;

/// Handle to a scheduled event; allows cancellation (e.g. a server's poll
/// timer when it deregisters). Default-constructed handles are inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly.
  void cancel() noexcept {
    if (cancelled_) *cancelled_ = true;
  }
  [[nodiscard]] bool active() const noexcept { return cancelled_ && !*cancelled_; }

 private:
  friend class Engine;
  explicit EventHandle(std::shared_ptr<bool> flag) : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

/// The event queue. Events scheduled for the same instant fire in the order
/// they were scheduled, which makes every run bit-reproducible.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute time `when` (>= now). Scheduling in
  /// the past is clamped to `now` rather than rejected: entities routinely
  /// react "immediately".
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Schedule `fn` after a relative delay.
  EventHandle schedule_after(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the queue drains or `until` is reached (whichever first).
  /// Returns the number of events executed.
  std::uint64_t run(SimTime until = kForever);

  /// Execute at most one pending event. Returns false if the queue is empty
  /// or the next event lies beyond `until`.
  bool step(SimTime until = kForever);

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  static constexpr SimTime kForever = 1e300;

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace faucets::sim
