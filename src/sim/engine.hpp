// Deterministic discrete-event simulation engine.
//
// Section 5.4 of the Faucets paper describes a simulation system in which
// every entity of the grid — clients, Compute Servers, the Faucets Server,
// schedulers with their bid generators, and applications — is an object, and
// discrete-event simulation is carried out over job-submission patterns.
// This engine is that substrate: a single-threaded, deterministic event
// queue ordered by (time, sequence number).
//
// Events live in a slab of pooled slots recycled through a free list, and
// the queue is an indexed 4-ary heap with back-pointers, so cancel()
// removes the event in O(log n) instead of leaving a tombstone. The
// ordering keys (time, seq) are stored inside the heap entries themselves:
// sift comparisons stay within the contiguous heap array instead of chasing
// slot indices into the slab, which is what makes million-event queues fast
// (each slab lookup is a cache miss at that size). The slab entry is left
// at exactly one cache line: callable + generation + back-pointer.
// Handles are {slot, generation} pairs: firing or cancelling bumps the
// slot's generation, so a stale handle can neither cancel nor report active
// for a recycled slot. Closures are stored in a SmallFunction, so scheduling
// a timer with a small capture performs zero heap allocations once the pool
// is warm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/callable.hpp"

namespace faucets::obs {
class ProfilerLane;
}  // namespace faucets::obs

namespace faucets::sim {

/// Simulated time in seconds since the start of the simulation.
using SimTime = double;

class Engine;

/// Handle to a scheduled event; allows cancellation (e.g. a server's poll
/// timer when it deregisters). Default-constructed handles are inert.
/// A handle is only meaningful while the Engine that issued it is alive.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly, and
  /// a no-op once the event fired or the slot was recycled.
  void cancel() noexcept;

  /// True while the event is still queued: not yet fired, not cancelled.
  [[nodiscard]] bool active() const noexcept;

 private:
  friend class Engine;
  EventHandle(Engine* engine, std::uint32_t slot, std::uint32_t generation) noexcept
      : engine_(engine), slot_(slot), generation_(generation) {}

  Engine* engine_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

/// The event queue. Events scheduled for the same instant fire in the order
/// they were scheduled, which makes every run bit-reproducible.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute time `when` (>= now). Scheduling in
  /// the past is clamped to `now` rather than rejected: entities routinely
  /// react "immediately".
  EventHandle schedule_at(SimTime when, SmallFunction fn);

  /// Schedule `fn` after a relative delay.
  EventHandle schedule_after(SimTime delay, SmallFunction fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the queue drains or `until` is reached (whichever first).
  /// Returns the number of events executed.
  std::uint64_t run(SimTime until = kForever);

  /// Execute at most one pending event. Returns false if the queue is empty
  /// or the next event lies beyond `until`.
  bool step(SimTime until = kForever);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Time of the earliest pending event, kForever when the queue is empty.
  /// Sharded runs use this to compute the global lower bound of a lookahead
  /// window without popping anything.
  [[nodiscard]] SimTime next_time() const noexcept {
    return heap_.empty() ? kForever : heap_[0].time;
  }

  /// Rank (scheduling time) of the earliest pending event. The rank is the
  /// value of now() at the moment schedule_at ran, which for a message
  /// delivery equals its send time — the key that lets a sharded run merge
  /// local deliveries with cross-shard envelopes in exactly the order a
  /// single global heap would have produced. Precondition: !empty().
  [[nodiscard]] SimTime next_rank() const noexcept { return rank_[heap_[0].slot()]; }

  /// Creation stamp of the earliest pending event (see CreationStamp).
  /// Precondition: !empty().
  [[nodiscard]] std::uint64_t next_creator() const noexcept {
    return creator_[heap_[0].slot()];
  }
  [[nodiscard]] std::uint64_t next_cseq() const noexcept {
    return cseq_[heap_[0].slot()];
  }

  /// Advance the clock without executing anything (never moves it backwards).
  /// Used when a cross-shard message delivery or an end-of-run fixup owns the
  /// clock instead of a locally queued event.
  void advance_to(SimTime t) noexcept {
    if (t > now_) now_ = t;
  }

  /// Count one externally executed event (a cross-shard delivery) so that
  /// executed() totals stay comparable with a single-engine run, where every
  /// delivery passes through step(), and adopt its stamp as the current
  /// execution stamp so trace records and span ops emitted while handling it
  /// sort exactly where a single global heap would have placed them.
  void begin_external_event(SimTime rank, std::uint64_t creator,
                            std::uint64_t cseq) noexcept {
    ++executed_;
    cur_rank_ = rank;
    cur_creator_ = creator;
    cur_cseq_ = cseq;
  }

  // --- canonical event identity -------------------------------------------
  //
  // Every event creation (timer or message delivery) is stamped with the
  // identity of the entity whose code performed it plus that entity's own
  // monotone creation counter. Because each entity lives on exactly one
  // shard and executes its events in the same relative order at every shard
  // count, the stamp (creator, cseq) names the same logical event no matter
  // how the grid is partitioned — it is the shard-count-independent half of
  // the canonical total order (time, rank, creator, cseq) that sharded runs
  // use to break time ties (see DESIGN.md §11). The single-engine heap keeps
  // its historical (time, insertion-seq) order bit-for-bit; stamps are still
  // maintained there so merged trace/span views can sort canonically at any
  // shard count, including one.

  /// Sentinel creator for creations outside any entity's code.
  static constexpr std::uint64_t kNoEntity = ~std::uint64_t{0};

  /// Attribute subsequent creations to `entity` (the value of an EntityId).
  /// Called by the Network on attach and before each message handler, and by
  /// entity methods that are invoked from outside the event loop.
  void set_current_entity(std::uint64_t entity) noexcept {
    current_entity_ = entity;
  }
  [[nodiscard]] std::uint64_t current_entity() const noexcept {
    return current_entity_;
  }

  struct CreationStamp {
    std::uint64_t creator = kNoEntity;
    std::uint64_t cseq = 0;
  };

  /// Consume the next creation stamp for the current entity. schedule_at
  /// draws one per event; the Network draws one per cross-shard envelope so
  /// local and remote sends share a single per-entity sequence.
  [[nodiscard]] CreationStamp take_creation_stamp() {
    if (current_entity_ == kNoEntity) return {kNoEntity, orphan_seq_++};
    if (current_entity_ >= entity_seq_.size()) {
      entity_seq_.resize(static_cast<std::size_t>(current_entity_) + 1, 0);
    }
    return {current_entity_, entity_seq_[static_cast<std::size_t>(current_entity_)]++};
  }

  /// Break same-time heap ties by (rank, creator, cseq) instead of insertion
  /// order. Sharded contexts enable this so every shard executes its slice of
  /// the canonical global order; the default stays the historical
  /// single-engine order.
  void enable_deterministic_ties() noexcept { deterministic_ties_ = true; }

  /// Stamp of the event currently being executed (valid during a handler).
  struct ExecStamp {
    SimTime rank = 0.0;
    std::uint64_t creator = kNoEntity;
    std::uint64_t cseq = 0;
  };
  [[nodiscard]] ExecStamp exec_stamp() const noexcept {
    return {cur_rank_, cur_creator_, cur_cseq_};
  }

  /// Total slots ever allocated in the pool (monotone; slot reuse keeps this
  /// near the high-water mark of concurrently pending events).
  [[nodiscard]] std::size_t pool_slots() const noexcept { return slots_.size(); }

  /// Attach a host-time profiler lane (DESIGN.md §12): step() brackets each
  /// dispatched handler with one timestamp pair. Null (the default) keeps
  /// the unprofiled path to a single branch per event; the hook compiles out
  /// entirely with -DFAUCETS_PROFILE=0.
  void set_profiler(obs::ProfilerLane* lane) noexcept { prof_ = lane; }

  static constexpr SimTime kForever = 1e300;

 private:
  friend class EventHandle;

  struct Slot {
    std::uint32_t generation = 0;
    SmallFunction fn;
  };

  /// Slot numbers fit 24 bits (16M concurrently pending events); the
  /// insertion sequence takes the upper 40 bits of the packed key, so a
  /// plain integer compare breaks time ties in scheduling order.
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;

  /// Heap entry carrying the ordering keys, so comparisons never touch the
  /// slab: 16 bytes, four children per cache line. 4-ary layout: parent
  /// (i-1)/4, children 4i+1 .. 4i+4.
  struct HeapEntry {
    SimTime time;
    std::uint64_t key;  // (seq << kSlotBits) | slot

    [[nodiscard]] std::uint32_t slot() const noexcept {
      return static_cast<std::uint32_t>(key) & kSlotMask;
    }
  };

  [[nodiscard]] bool slot_active(std::uint32_t slot, std::uint32_t generation) const noexcept {
    return slot < slots_.size() && slots_[slot].generation == generation &&
           pos_[slot] >= 0;
  }
  void cancel_slot(std::uint32_t slot, std::uint32_t generation) noexcept;

  [[nodiscard]] bool earlier(const HeapEntry& a, const HeapEntry& b) const noexcept {
    if (a.time != b.time) return a.time < b.time;
    if (!deterministic_ties_) return a.key < b.key;
    const std::uint32_t sa = a.slot();
    const std::uint32_t sb = b.slot();
    if (rank_[sa] != rank_[sb]) return rank_[sa] < rank_[sb];
    if (creator_[sa] != creator_[sb]) return creator_[sa] < creator_[sb];
    return cseq_[sa] < cseq_[sb];
  }
  void place(const HeapEntry& e, std::size_t i) noexcept {
    heap_[i] = e;
    pos_[e.slot()] = static_cast<std::int32_t>(i);
  }
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  void remove_heap_at(std::size_t pos) noexcept;
  void pop_root() noexcept;
  void retire_slot(std::uint32_t slot) noexcept;

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  obs::ProfilerLane* prof_ = nullptr;  // host-time recorder; null = off
  bool deterministic_ties_ = false;
  std::uint64_t current_entity_ = kNoEntity;
  std::uint64_t orphan_seq_ = 0;
  SimTime cur_rank_ = 0.0;              // stamp of the executing event
  std::uint64_t cur_creator_ = kNoEntity;
  std::uint64_t cur_cseq_ = 0;
  std::vector<Slot> slots_;         // slab of pooled callables
  std::vector<std::int32_t> pos_;   // heap position per slot; -1 = not queued
  std::vector<SimTime> rank_;       // scheduling time per slot (see next_rank)
  std::vector<std::uint64_t> creator_;  // creation stamp per slot
  std::vector<std::uint64_t> cseq_;
  std::vector<std::uint64_t> exec_entity_;  // attribution during execution
  std::vector<std::uint64_t> entity_seq_;   // per-entity creation counters
  std::vector<std::uint32_t> free_; // recycled slot numbers
  std::vector<HeapEntry> heap_;     // indexed 4-ary heap
};

inline void EventHandle::cancel() noexcept {
  if (engine_ != nullptr) engine_->cancel_slot(slot_, generation_);
}

inline bool EventHandle::active() const noexcept {
  return engine_ != nullptr && engine_->slot_active(slot_, generation_);
}

}  // namespace faucets::sim
