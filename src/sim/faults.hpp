// Deterministic fault injection for the simulated network.
//
// The injector sits inside Network::send and decides, per message, whether
// the wire loses it (seeded Bernoulli loss), delays it (uniform jitter), or
// blackholes it because an endpoint is inside a partition window. Decisions
// come from a private xoshiro stream seeded independently of the workload
// RNG, so enabling faults never perturbs job generation, and the same
// FaultConfig always produces the same drop pattern. When no faults are
// configured the injector consumes zero random numbers and existing runs
// stay byte-identical.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/obs/trace.hpp"
#include "src/util/ids.hpp"
#include "src/util/rng.hpp"

namespace faucets::sim {

/// One link-partition window: every message to or from `isolated` is dropped
/// while `from <= now < until`. Modeling the partition as one unreachable
/// entity covers the interesting grid cases (a WAN-cut cluster daemon, an
/// unreachable Central Server) with a trivially scriptable config.
struct Partition {
  EntityId isolated;
  double from = 0.0;
  double until = 0.0;
};

struct FaultConfig {
  /// Probability in [0, 1] that any message is silently lost.
  double loss_rate = 0.0;
  /// Extra uniform delay in [0, jitter) seconds added to every delivery.
  double jitter = 0.0;
  /// Seed of the injector's private RNG stream.
  std::uint64_t seed = 0xfa0c7e75ULL;
  std::vector<Partition> partitions;
  /// Loss and jitter draws only start once now >= active_from, and the
  /// injector consumes no randomness before then. Warm-fork sweeps set this
  /// to the warm-up boundary so a run forked at that instant and a run that
  /// carried the treatment from t = 0 draw identical fault streams.
  /// Partitions are absolute-time windows and ignore this gate.
  double active_from = 0.0;

  [[nodiscard]] bool any() const noexcept {
    return loss_rate > 0.0 || jitter > 0.0 || !partitions.empty();
  }
};

class FaultInjector {
 public:
  /// What send() should do with one message.
  struct Verdict {
    bool drop = false;
    obs::DropReason reason = obs::DropReason::kFaultInjected;
    double extra_delay = 0.0;
  };

  FaultInjector() = default;

  void configure(FaultConfig config) {
    config_ = std::move(config);
    rng_.reseed(config_.seed);
    enabled_ = config_.any();
  }

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Swap in a new loss/jitter treatment mid-run WITHOUT reseeding the RNG.
  /// A forked warm run calls this at the activation boundary; because the
  /// gate above kept the stream untouched until then, the child's draws
  /// match a run configured with this treatment from the start.
  void set_treatment(double loss_rate, double jitter) noexcept {
    config_.loss_rate = loss_rate;
    config_.jitter = jitter;
    enabled_ = config_.any();
  }

  /// Decide the fate of one message. Allocation-free and, when no faults are
  /// configured, a single branch that touches no RNG state. Loopback
  /// (from == to) models in-process delivery and is never faulted.
  [[nodiscard]] Verdict inspect(EntityId from, EntityId to, double now) noexcept {
    Verdict v;
    if (!enabled_ || from == to) return v;
    if (partitioned(from, now) || partitioned(to, now)) {
      v.drop = true;
      v.reason = obs::DropReason::kPartitioned;
      return v;
    }
    // Before activation the stochastic faults are dormant AND no random
    // numbers are drawn — the stream's phase at activation is identical
    // whether the treatment was configured at t = 0 or injected just now.
    if (now < config_.active_from) return v;
    if (config_.loss_rate > 0.0 && rng_.bernoulli(config_.loss_rate)) {
      v.drop = true;
      v.reason = obs::DropReason::kFaultInjected;
      return v;
    }
    if (config_.jitter > 0.0) v.extra_delay = rng_.uniform(0.0, config_.jitter);
    return v;
  }

  /// Is `entity` inside any partition window at `now`?
  [[nodiscard]] bool partitioned(EntityId entity, double now) const noexcept {
    for (const Partition& p : config_.partitions) {
      if (p.isolated == entity && now >= p.from && now < p.until) return true;
    }
    return false;
  }

 private:
  FaultConfig config_;
  Rng rng_{0xfa0c7e75ULL};
  bool enabled_ = false;
};

}  // namespace faucets::sim
