// Simulated network: delivers messages between entities with configurable
// latency and bandwidth, and counts traffic for the scalability experiments
// (E7 in DESIGN.md).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/obs/trace.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/entity.hpp"
#include "src/sim/faults.hpp"

namespace faucets::obs {
class Observability;
class Counter;
class Gauge;
class Histogram;
class ProfilerLane;
}

namespace faucets::sim {

class ShardRouter;

/// Latency/bandwidth parameters of the simulated WAN connecting the grid.
struct NetworkConfig {
  /// One-way base latency between any two distinct entities, seconds.
  double base_latency = 0.010;
  /// Bytes per second for the bandwidth term; 0 disables it.
  double bandwidth = 1.25e8;  // ~1 Gbit/s
  /// Latency for an entity messaging itself (local loopback).
  double local_latency = 1e-6;
};

/// Registry of entities plus the message-passing fabric. Single instance per
/// simulation.
class Network {
 public:
  /// `router`/`shard` wire this fabric into a sharded run: ids come from the
  /// router's global counter and messages to entities owned by other shards
  /// are posted as mailbox envelopes instead of local delivery events. With
  /// a null router (the default) behavior is exactly the single-engine path.
  explicit Network(Engine& engine, NetworkConfig config = {},
                   obs::Observability* obs = nullptr,
                   ShardRouter* router = nullptr, std::uint32_t shard = 0);

  /// Register an entity; assigns its EntityId. The caller keeps ownership.
  EntityId attach(Entity& entity);

  /// Remove an entity (e.g. a Compute Server going down). In-flight messages
  /// to it are dropped on delivery (traced as kNetDrop events).
  void detach(EntityId id);

  /// Re-register a previously attached entity under its existing id — a
  /// crashed daemon coming back keeps its address, so directory entries and
  /// clients' stored EntityIds stay valid across the restart.
  void reattach(Entity& entity);

  /// Send a message; ownership transfers. Fills in from/to/sent_at and
  /// schedules delivery after the modeled delay. Messages from a detached
  /// sender or to a receiver gone by delivery time are dropped with a typed
  /// kNetDrop trace event and counted in messages_dropped().
  void send(const Entity& from, EntityId to, MessagePtr msg);

  [[nodiscard]] Entity* find(EntityId id) const;
  /// Messages sent + delivered involving one entity (scalability metric:
  /// "impractical for each client to deal with a flood of bids", §5.3).
  [[nodiscard]] std::uint64_t traffic_of(EntityId id) const;
  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept { return messages_delivered_; }
  [[nodiscard]] std::uint64_t messages_dropped() const noexcept { return messages_dropped_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }

  /// Configure deterministic fault injection (loss, jitter, partitions).
  /// May be called after construction but before (or between) runs.
  void set_faults(FaultConfig faults) { faults_.configure(std::move(faults)); }
  [[nodiscard]] const FaultInjector& faults() const noexcept { return faults_; }
  /// Swap the loss/jitter treatment mid-run without reseeding the injector's
  /// RNG (warm-fork sweeps; see FaultInjector::set_treatment).
  void set_fault_treatment(double loss_rate, double jitter) noexcept {
    faults_.set_treatment(loss_rate, jitter);
  }

  /// Messages dropped for one specific reason (lifecycle or injected).
  [[nodiscard]] std::uint64_t dropped_of(obs::DropReason reason) const noexcept {
    return dropped_by_reason_[static_cast<std::size_t>(reason)];
  }

  /// Per-kind traffic counters, indexed by MessageKind.
  using KindCounters = std::array<std::uint64_t, kMessageKindCount>;
  [[nodiscard]] const KindCounters& sent_by_kind() const noexcept { return sent_by_kind_; }
  [[nodiscard]] const KindCounters& delivered_by_kind() const noexcept {
    return delivered_by_kind_;
  }
  [[nodiscard]] std::uint64_t sent_of(MessageKind kind) const noexcept {
    return sent_by_kind_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t delivered_of(MessageKind kind) const noexcept {
    return delivered_by_kind_[static_cast<std::size_t>(kind)];
  }

  /// Where drop events and fabric counters go; may be null (no observability).
  void set_observability(obs::Observability* obs);

  /// Delay a payload of `bytes` experiences between `from` and `to`.
  [[nodiscard]] double delay(EntityId from, EntityId to, std::size_t bytes) const noexcept;

  /// Reset traffic counters (used between benchmark phases).
  void reset_counters() noexcept;

  /// Deliver a cross-shard envelope drained from this shard's mailbox. The
  /// caller (the sharded run loop) has already advanced the engine clock to
  /// the envelope's arrival time. Receive-side accounting happens here, on
  /// the receiving shard, exactly as the local delivery closure would.
  void deliver_envelope(MessageKind kind, MessagePtr msg);

  /// Shard this fabric belongs to (0 in a single-engine run).
  [[nodiscard]] std::uint32_t shard() const noexcept { return shard_; }

  /// Attach this shard's host-time profiler lane (DESIGN.md §12): deliver()
  /// tags the in-flight event with (MessageKind, entity class) so the
  /// engine's timestamp pair lands in the right attribution buckets.
  void set_profiler(obs::ProfilerLane* lane) noexcept { prof_ = lane; }

  /// Traffic counters that merge by exact sum across shards; exposed so the
  /// sharded GridSystem can aggregate without friend access.
  [[nodiscard]] const std::unordered_map<EntityId, std::uint64_t>&
  per_entity_traffic() const noexcept {
    return per_entity_traffic_;
  }
  [[nodiscard]] const std::array<std::uint64_t, obs::kDropReasonCount>&
  dropped_by_reason() const noexcept {
    return dropped_by_reason_;
  }

 private:
  void drop(MessageKind kind, EntityId at, EntityId peer, obs::DropReason reason);
  void register_metrics();
  void deliver(MessageKind kind, MessagePtr msg);

  Engine* engine_;
  NetworkConfig config_;
  obs::Observability* obs_;
  ShardRouter* router_ = nullptr;
  std::uint32_t shard_ = 0;
  obs::ProfilerLane* prof_ = nullptr;  // host-time recorder; null = off
  // Registry instruments, resolved once so the send path never does a
  // by-name lookup. Null when obs_ is null.
  obs::Counter* sent_ctr_ = nullptr;
  obs::Counter* delivered_ctr_ = nullptr;
  obs::Counter* dropped_ctr_ = nullptr;
  obs::Counter* bytes_ctr_ = nullptr;
  std::unordered_map<EntityId, Entity*> entities_;
  std::unordered_map<EntityId, std::uint64_t> per_entity_traffic_;
  std::uint64_t next_id_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t bytes_sent_ = 0;
  KindCounters sent_by_kind_{};
  KindCounters delivered_by_kind_{};
  std::array<std::uint64_t, obs::kDropReasonCount> dropped_by_reason_{};
  FaultInjector faults_;
};

}  // namespace faucets::sim
