// Small-buffer, move-only callable used for timer events.
//
// The engine's hot path schedules millions of closures per simulated run;
// paying a heap allocation per closure (as std::function does once the
// capture outgrows its tiny SSO buffer) dominates the event loop. This type
// stores any callable whose state fits in kInlineCapacity bytes directly
// inside the event slot, so the common capture sizes (a couple of pointers
// plus a few scalars) never touch the allocator. Larger or
// potentially-throwing-on-move callables fall back to a single heap box.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace faucets::sim {

/// Move-only `void()` callable with inline storage. Unlike std::function it
/// accepts move-only captures (e.g. unique_ptr message payloads), which lets
/// the network hand ownership straight into the delivery event.
class SmallFunction {
 public:
  /// Captures up to this many bytes are stored inline (no allocation).
  static constexpr std::size_t kInlineCapacity = 48;

  SmallFunction() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  SmallFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = inline_ops<D>();
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = boxed_ops<D>();
    }
  }

  SmallFunction(SmallFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Whether a callable of type D would be stored inline (test hook).
  template <typename D>
  static constexpr bool fits_inline() noexcept {
    return sizeof(D) <= kInlineCapacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  // Manual vtable: relocate = move-construct into dst + destroy src, which
  // lets the engine shuttle events between slots without knowing D.
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static const Ops* inline_ops() noexcept {
    static constexpr Ops ops{
        [](void* p) { (*static_cast<D*>(p))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) D(std::move(*static_cast<D*>(src)));
          static_cast<D*>(src)->~D();
        },
        [](void* p) noexcept { static_cast<D*>(p)->~D(); }};
    return &ops;
  }

  template <typename D>
  static const Ops* boxed_ops() noexcept {
    static constexpr Ops ops{
        [](void* p) { (**static_cast<D**>(p))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) D*(*static_cast<D**>(src));
        },
        [](void* p) noexcept { delete *static_cast<D**>(p); }};
    return &ops;
  }

  alignas(std::max_align_t) std::byte storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace faucets::sim
