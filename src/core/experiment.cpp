#include "src/core/experiment.hpp"

#include "src/sim/context.hpp"

namespace faucets::core {

ClusterRunResult run_cluster_experiment(
    const cluster::MachineSpec& machine,
    const std::function<std::unique_ptr<sched::Strategy>()>& strategy,
    const std::vector<job::JobRequest>& requests, job::AdaptiveCosts costs) {
  sim::SimContext ctx;
  cluster::ClusterManager cm{ctx, machine, strategy(), costs};

  for (const auto& req : requests) {
    ctx.engine().schedule_at(req.submit_time, [&cm, &req] {
      cm.submit(UserId{req.user_index}, req.contract);
    });
  }
  ctx.engine().run();
  cm.finish_metrics();

  ClusterRunResult out;
  const auto& m = cm.metrics();
  out.utilization = m.utilization();
  out.completed = m.completed();
  out.rejected = m.rejected();
  out.mean_response = m.response_times().mean();
  out.p95_response = m.response_times().percentile(95.0);
  out.mean_bounded_slowdown = m.slowdowns().mean();
  out.total_payoff = m.total_payoff();
  out.deadline_misses = m.deadline_misses();
  out.makespan = ctx.engine().now();
  out.work_completed = m.work_completed();
  out.reconfigs_per_job =
      m.completed() == 0 ? 0.0
                         : static_cast<double>(m.total_reconfigs()) /
                               static_cast<double>(m.completed());
  return out;
}

}  // namespace faucets::core
