#include "src/core/experiment.hpp"

#include <algorithm>

#include "src/sim/context.hpp"

namespace faucets::core {

namespace {

// The single-cluster submission chain: pull one request per timer firing
// and re-arm for the next, mirroring FaucetsClient::arm_next_submission.
void pump_source(sim::SimContext& ctx, cluster::ClusterManager& cm,
                 job::WorkloadSource& source) {
  const double t = source.peek_next_submit_time();
  if (t >= job::WorkloadSource::kNoMoreJobs) return;
  ctx.engine().schedule_at(std::max(t, ctx.engine().now()),
                           [&ctx, &cm, &source] {
                             job::JobRequest req = source.next();
                             pump_source(ctx, cm, source);
                             cm.submit(UserId{req.user_index}, req.contract);
                           });
}

}  // namespace

ClusterRunResult run_cluster_experiment(
    const cluster::MachineSpec& machine,
    const std::function<std::unique_ptr<sched::Strategy>()>& strategy,
    const std::vector<job::JobRequest>& requests, job::AdaptiveCosts costs) {
  job::VectorSource source(requests);
  return run_cluster_experiment(machine, strategy, source, costs);
}

ClusterRunResult run_cluster_experiment(
    const cluster::MachineSpec& machine,
    const std::function<std::unique_ptr<sched::Strategy>()>& strategy,
    job::WorkloadSource& source, job::AdaptiveCosts costs) {
  sim::SimContext ctx;
  cluster::ClusterManager cm{ctx, machine, strategy(), costs};

  pump_source(ctx, cm, source);
  ctx.engine().run();
  cm.finish_metrics();

  ClusterRunResult out;
  const auto& m = cm.metrics();
  out.utilization = m.utilization();
  out.completed = m.completed();
  out.rejected = m.rejected();
  out.mean_response = m.response_times().mean();
  out.p95_response = m.response_times().percentile(95.0);
  out.mean_bounded_slowdown = m.slowdowns().mean();
  out.total_payoff = m.total_payoff();
  out.deadline_misses = m.deadline_misses();
  out.makespan = ctx.engine().now();
  out.work_completed = m.work_completed();
  out.reconfigs_per_job =
      m.completed() == 0 ? 0.0
                         : static_cast<double>(m.total_reconfigs()) /
                               static_cast<double>(m.completed());
  return out;
}

}  // namespace faucets::core
