#include "src/core/scenario.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "src/faucets/central_store.hpp"
#include "src/sched/backfill.hpp"
#include "src/sweep/jsonio.hpp"
#include "src/sched/equipartition.hpp"
#include "src/sched/fcfs.hpp"
#include "src/sched/payoff_sched.hpp"
#include "src/sched/priority_sched.hpp"
#include "src/util/table.hpp"

namespace faucets::core {

StrategyFactory strategy_factory(const std::string& name) {
  if (name == "fcfs") {
    return [] { return std::make_unique<sched::FcfsStrategy>(); };
  }
  if (name == "backfill") {
    return [] { return std::make_unique<sched::BackfillStrategy>(); };
  }
  if (name == "equipartition") {
    return [] { return std::make_unique<sched::EquipartitionStrategy>(); };
  }
  if (name == "payoff") {
    return [] { return std::make_unique<sched::PayoffStrategy>(); };
  }
  if (name == "priority") {
    return [] { return std::make_unique<sched::PriorityStrategy>(); };
  }
  throw std::invalid_argument(
      "unknown strategy '" + name +
      "' (expected fcfs|backfill|equipartition|payoff|priority)");
}

BidGeneratorFactory bidgen_factory(const std::string& name) {
  if (name == "baseline") {
    return [] { return std::make_unique<market::BaselineBidGenerator>(); };
  }
  if (name == "utilization") {
    return [] { return std::make_unique<market::UtilizationBidGenerator>(); };
  }
  if (name == "market") {
    return [] { return std::make_unique<market::MarketAwareBidGenerator>(); };
  }
  if (name == "futures") {
    return [] { return std::make_unique<market::FuturesBidGenerator>(); };
  }
  throw std::invalid_argument("unknown bidgen '" + name +
                              "' (expected baseline|utilization|market|futures)");
}

EvaluatorFactory evaluator_factory(const std::string& name) {
  if (name == "least-cost") {
    return [] { return std::make_unique<market::LeastCostEvaluator>(); };
  }
  if (name == "earliest-completion") {
    return [] { return std::make_unique<market::EarliestCompletionEvaluator>(); };
  }
  if (name == "surplus") {
    return [] { return std::make_unique<market::SurplusEvaluator>(); };
  }
  throw std::invalid_argument(
      "unknown evaluator '" + name +
      "' (expected least-cost|earliest-completion|surplus)");
}

namespace {

BillingMode billing_mode(const std::string& name) {
  if (name == "dollars") return BillingMode::kDollars;
  if (name == "su") return BillingMode::kServiceUnits;
  if (name == "barter") return BillingMode::kBarter;
  throw std::invalid_argument("unknown billing '" + name +
                              "' (expected dollars|su|barter)");
}

// One shaping vocabulary for [workload] and [trace]: both sections read
// the same keys into the same JobShaping, so they cannot drift apart.
void parse_shaping(const ConfigSection& section, job::JobShaping& shaping) {
  shaping.malleability = section.get_double("malleability", shaping.malleability);
  shaping.deadline_fraction =
      section.get_double("deadline_fraction", shaping.deadline_fraction);
  shaping.tightness_lo = section.get_double("tightness_lo", shaping.tightness_lo);
  shaping.tightness_hi = section.get_double("tightness_hi", shaping.tightness_hi);
  shaping.hard_stretch = section.get_double("hard_stretch", shaping.hard_stretch);
  shaping.price_per_work =
      section.get_double("price_per_work", shaping.price_per_work);
  shaping.premium_lo = section.get_double("premium_lo", shaping.premium_lo);
  shaping.premium_hi = section.get_double("premium_hi", shaping.premium_hi);
  shaping.penalty_fraction =
      section.get_double("penalty_fraction", shaping.penalty_fraction);
}

}  // namespace

Scenario Scenario::parse(const ConfigFile& config) {
  Scenario out;

  const ConfigSection* grid = config.section("grid");
  if (grid != nullptr) {
    out.grid.central.billing = billing_mode(grid->get_string("billing", "dollars"));
    out.grid.clients_prefer_home = grid->get_bool("prefer_home", false);
    out.grid.brokered_submission = grid->get_bool("brokered", false);
    // Optional knobs keep their INI spelling: a negative watchdog and a
    // price band <= 1 mean "off", and map onto disengaged optionals.
    const double watchdog = grid->get_double("watchdog", -1.0);
    if (watchdog >= 0.0) out.grid.client_watchdog_margin = watchdog;
    const double band = grid->get_double("price_band", 0.0);
    if (band > 1.0) out.grid.central.price_band = band;
    out.grid.evaluator =
        evaluator_factory(grid->get_string("evaluator", "least-cost"));
    out.seed = static_cast<std::uint64_t>(grid->get_int("seed", 42));
  } else {
    out.grid.evaluator = evaluator_factory("least-cost");
  }

  const ConfigSection* faults = config.section("faults");
  if (faults != nullptr) {
    out.grid.faults.loss_rate = faults->get_double("loss", 0.0);
    out.grid.faults.jitter = faults->get_double("jitter", 0.0);
    out.grid.faults.seed = static_cast<std::uint64_t>(
        faults->get_int("seed", static_cast<long>(out.grid.faults.seed)));
    const long crash_cluster = faults->get_int("crash_cluster", -1);
    if (crash_cluster >= 0) {
      CrashSchedule crash;
      crash.cluster = static_cast<std::size_t>(crash_cluster);
      crash.at = faults->get_double("crash_at", 0.0);
      const double restart = faults->get_double("crash_restart", -1.0);
      if (restart >= 0.0) crash.restart_at = restart;
      out.grid.crashes.push_back(crash);
    }
    const long part_cluster = faults->get_int("partition_cluster", -1);
    if (part_cluster >= 0) {
      out.grid.partitions.push_back(
          {static_cast<std::size_t>(part_cluster),
           faults->get_double("partition_from", 0.0),
           faults->get_double("partition_until", 0.0)});
    }
    out.grid.retry.max_attempts = static_cast<int>(
        faults->get_int("retry_attempts", out.grid.retry.max_attempts));
    out.grid.retry.base_timeout =
        faults->get_double("retry_base", out.grid.retry.base_timeout);
  }

  const auto cluster_sections = config.sections("cluster");
  if (cluster_sections.empty()) {
    throw std::invalid_argument("scenario needs at least one [cluster] section");
  }
  int index = 0;
  for (const auto* section : cluster_sections) {
    ClusterSetup setup;
    setup.machine.name = section->get_string("name", "cluster" + std::to_string(index));
    setup.machine.total_procs = static_cast<int>(section->get_int("procs", 128));
    if (setup.machine.total_procs <= 0) {
      throw std::invalid_argument("cluster '" + setup.machine.name +
                                  "': procs must be positive");
    }
    setup.machine.cost_per_cpu_second = section->get_double("cost", 0.0008);
    setup.machine.speed_factor = section->get_double("speed", 1.0);
    setup.machine.memory_per_proc_mb = section->get_double("mem_mb", 4096.0);
    setup.strategy = strategy_factory(section->get_string("strategy", "payoff"));
    setup.bid_generator = bidgen_factory(section->get_string("bidgen", "baseline"));
    setup.barter_credits = section->get_double("credits", 0.0);
    out.clusters.push_back(std::move(setup));
    ++index;
  }

  for (const auto& crash : out.grid.crashes) {
    if (crash.cluster >= out.clusters.size()) {
      throw std::invalid_argument("[faults] crash_cluster " +
                                  std::to_string(crash.cluster) +
                                  " is out of range");
    }
  }
  for (const auto& part : out.grid.partitions) {
    if (part.cluster >= out.clusters.size()) {
      throw std::invalid_argument("[faults] partition_cluster " +
                                  std::to_string(part.cluster) +
                                  " is out of range");
    }
  }

  const ConfigSection* wl = config.section("workload");
  std::size_t users = 8;
  if (grid != nullptr) {
    users = static_cast<std::size_t>(grid->get_int("users", 8));
  }
  out.workload.user_count = users;
  out.workload.cluster_count = out.clusters.size();
  if (wl != nullptr) {
    out.workload.job_count = static_cast<std::size_t>(wl->get_int("jobs", 200));
    out.workload.rigid_fraction = wl->get_double("rigid_fraction", 0.0);
    out.workload.min_procs_lo = static_cast<int>(wl->get_int("min_procs_lo", 4));
    out.workload.min_procs_hi = static_cast<int>(wl->get_int("min_procs_hi", 32));
    parse_shaping(*wl, out.workload.shaping);
  }
  // Clamp jobs to the smallest machine? No — clamp their processor demand
  // to the largest machine so everything is placeable somewhere.
  int largest = 0;
  for (const auto& c : out.clusters) largest = std::max(largest, c.machine.total_procs);
  out.workload.shaping.procs_cap = largest;
  out.workload.min_procs_hi = std::min(out.workload.min_procs_hi, largest);
  out.workload.min_procs_lo =
      std::min(out.workload.min_procs_lo, out.workload.min_procs_hi);

  const ConfigSection* trace = config.section("trace");
  if (trace != nullptr) {
    TraceScenario ts;
    ts.path = trace->get_string("file", "");
    if (ts.path.empty()) {
      throw std::invalid_argument("[trace] needs a file = <path.swf> key");
    }
    job::SwfOptions& topt = ts.options;
    topt.cluster_count = out.clusters.size();
    topt.time_compression = trace->get_double("time_compression", 1.0);
    if (topt.time_compression <= 0.0) {
      throw std::invalid_argument("[trace] time_compression must be positive");
    }
    const long um = trace->get_int("user_multiplier", 1);
    const long cm = trace->get_int("cluster_multiplier", 1);
    if (um < 1 || cm < 1) {
      throw std::invalid_argument("[trace] multipliers must be >= 1");
    }
    topt.user_multiplier = static_cast<std::size_t>(um);
    topt.cluster_multiplier = static_cast<std::size_t>(cm);
    topt.clone_jitter = trace->get_double("jitter", topt.clone_jitter);
    topt.sort_window = trace->get_double("sort_window", 0.0);
    topt.max_jobs =
        static_cast<std::size_t>(std::max(0L, trace->get_int("max_jobs", 0)));
    topt.read_ahead = static_cast<std::size_t>(
        std::max(1L, trace->get_int("read_ahead",
                                    static_cast<long>(topt.read_ahead))));
    // The trace draws its shaping/jitter randomness from the scenario seed
    // unless the section pins its own.
    topt.seed = static_cast<std::uint64_t>(
        trace->get_int("seed", static_cast<long>(out.seed)));
    parse_shaping(*trace, topt.shaping);
    topt.shaping.procs_cap = largest;
    out.trace = std::move(ts);
  }

  // [market] — price-history retention (satellite of DESIGN.md §14): how
  // many settled contracts the Central Server's bounded deque keeps and how
  // far back its queries look.
  const ConfigSection* market = config.section("market");
  if (market != nullptr) {
    const long capacity = market->get_int(
        "history_capacity", static_cast<long>(out.grid.central.history_capacity));
    if (capacity < 1) {
      throw std::invalid_argument("[market] history_capacity must be >= 1");
    }
    out.grid.central.history_capacity = static_cast<std::size_t>(capacity);
    out.grid.central.history_window = market->get_double(
        "history_window", out.grid.central.history_window);
    if (out.grid.central.history_window <= 0.0) {
      throw std::invalid_argument("[market] history_window must be positive");
    }
  }

  // [store] — durable accounting state (DESIGN.md §14).
  const ConfigSection* store_section = config.section("store");
  if (store_section != nullptr) {
    out.grid.store.dir = store_section->get_string("dir", "");
    if (out.grid.store.dir.empty()) {
      throw std::invalid_argument("[store] needs a dir = <path> key");
    }
    const std::string sync = store_section->get_string("sync", "batch");
    if (sync == "none") {
      out.grid.store.sync = store::SyncPolicy::kNone;
    } else if (sync == "batch") {
      out.grid.store.sync = store::SyncPolicy::kBatch;
    } else if (sync == "always") {
      out.grid.store.sync = store::SyncPolicy::kAlways;
    } else {
      throw std::invalid_argument("[store] unknown sync '" + sync +
                                  "' (expected none|batch|always)");
    }
    out.grid.store.sync_every = static_cast<std::size_t>(std::max(
        1L, store_section->get_int("sync_every",
                                   static_cast<long>(out.grid.store.sync_every))));
    out.grid.store.snapshot_every = static_cast<std::uint64_t>(
        std::max(0L, store_section->get_int("snapshot_every", 0)));
  }

  const ConfigSection* shards = config.section("shards");
  if (shards != nullptr) {
    const long count = shards->get_int("count", 1);
    if (count < 1) {
      throw std::invalid_argument("[shards] count must be >= 1");
    }
    out.grid.shards = static_cast<std::size_t>(count);
  }

  // [profile] — opt-in host-time profiling (DESIGN.md §12). `enabled`
  // defaults to true when the section is present; artifact paths are
  // optional (empty = keep the profile in memory only).
  const ConfigSection* profile = config.section("profile");
  if (profile != nullptr) {
    out.grid.profile.enabled = profile->get_bool("enabled", true);
    out.grid.profile.json_path = profile->get_string("json", "");
    out.grid.profile.metrics_path = profile->get_string("metrics", "");
    out.grid.profile.chrome_path = profile->get_string("chrome", "");
  }

  const double load = wl != nullptr ? wl->get_double("load", 0.8) : 0.8;
  int total = 0;
  for (const auto& c : out.clusters) total += c.machine.total_procs;
  job::WorkloadGenerator::calibrate_load(out.workload, load, total);
  return out;
}

Scenario Scenario::parse_string(const std::string& text) {
  return parse(ConfigFile::parse_string(text));
}

int Scenario::total_procs() const {
  int total = 0;
  for (const auto& c : clusters) total += c.machine.total_procs;
  return total;
}

std::unique_ptr<GridSystem> Scenario::make_grid() const {
  return std::make_unique<GridSystem>(grid, clusters, workload.user_count);
}

std::unique_ptr<job::WorkloadSource> Scenario::make_source() const {
  if (trace.has_value()) {
    return job::SwfStreamSource::open(trace->path, trace->options);
  }
  return std::make_unique<job::GeneratorSource>(workload, seed);
}

std::vector<job::JobRequest> Scenario::make_requests() const {
  auto source = make_source();
  return job::collect(*source);
}

GridReport Scenario::run() {
  auto system = make_grid();
  auto source = make_source();
  return system->run(*source);
}

void write_report_json(std::ostream& os, const GridReport& report) {
  const auto num = [](double v) { return sweep::format_double(v); };
  os << "{\"jobs_submitted\":" << report.jobs_submitted
     << ",\"jobs_completed\":" << report.jobs_completed
     << ",\"jobs_unplaced\":" << report.jobs_unplaced
     << ",\"migrations\":" << report.migrations
     << ",\"watchdog_restarts\":" << report.watchdog_restarts
     << ",\"makespan\":" << num(report.makespan)
     << ",\"messages\":" << report.messages
     << ",\"network_bytes\":" << report.network_bytes
     << ",\"total_spent\":" << num(report.total_spent)
     << ",\"total_client_payoff\":" << num(report.total_client_payoff)
     << ",\"mean_award_latency\":" << num(report.mean_award_latency);
  os << ",\"messages_sent_by_kind\":[";
  for (std::size_t k = 0; k < report.messages_sent_by_kind.size(); ++k) {
    os << (k == 0 ? "" : ",") << report.messages_sent_by_kind[k];
  }
  os << "],\"messages_delivered_by_kind\":[";
  for (std::size_t k = 0; k < report.messages_delivered_by_kind.size(); ++k) {
    os << (k == 0 ? "" : ",") << report.messages_delivered_by_kind[k];
  }
  os << "],\"phase_mean_seconds\":[";
  for (std::size_t i = 0; i < report.phase_mean_seconds.size(); ++i) {
    os << (i == 0 ? "" : ",") << num(report.phase_mean_seconds[i]);
  }
  os << "],\"ledger\":{\"barter\":" << (report.ledger.barter ? "true" : "false")
     << ",\"opening_credits\":" << num(report.ledger.opening_credits)
     << ",\"total_credits\":" << num(report.ledger.total_credits)
     << ",\"conservation_residual\":" << num(report.ledger.conservation_residual)
     << ",\"transfers\":" << report.ledger.transfers
     << ",\"total_charged\":" << num(report.ledger.total_charged) << "}";
  os << ",\"clusters\":[";
  for (std::size_t i = 0; i < report.clusters.size(); ++i) {
    const ClusterReport& c = report.clusters[i];
    os << (i == 0 ? "" : ",") << "{\"name\":\"" << sweep::escape_json(c.name)
       << "\",\"utilization\":" << num(c.utilization)
       << ",\"completed\":" << c.completed
       << ",\"rejected\":" << c.rejected
       << ",\"revenue\":" << num(c.revenue)
       << ",\"payoff_earned\":" << num(c.payoff_earned)
       << ",\"bids_issued\":" << c.bids_issued
       << ",\"bids_declined\":" << c.bids_declined
       << ",\"awards_confirmed\":" << c.awards_confirmed
       << ",\"awards_refused\":" << c.awards_refused
       << ",\"barter_balance\":" << num(c.barter_balance) << "}";
  }
  os << "]}\n";
}

void fill_checkpoint(store::Checkpoint& ckpt, GridSystem& grid, double sim_time) {
  ckpt.sim_time = sim_time;
  ckpt.executed = grid.executed_counts();
  ckpt.state_image = encode_central_state(grid.central());
}

std::string verify_checkpoint(const store::Checkpoint& ckpt, GridSystem& grid) {
  const std::vector<std::uint64_t> executed = grid.executed_counts();
  if (executed.size() != ckpt.executed.size()) {
    return "shard count mismatch: checkpoint has " +
           std::to_string(ckpt.executed.size()) + " shards, this run has " +
           std::to_string(executed.size());
  }
  for (std::size_t s = 0; s < executed.size(); ++s) {
    if (executed[s] != ckpt.executed[s]) {
      return "shard " + std::to_string(s) + " executed " +
             std::to_string(executed[s]) + " events by t=" +
             std::to_string(ckpt.sim_time) + ", checkpoint recorded " +
             std::to_string(ckpt.executed[s]);
    }
  }
  if (encode_central_state(grid.central()) != ckpt.state_image) {
    return "central server state at t=" + std::to_string(ckpt.sim_time) +
           " differs from the checkpointed image";
  }
  return {};
}

void print_report(std::ostream& os, const GridReport& report) {
  os << "jobs: " << report.jobs_submitted << " submitted, "
     << report.jobs_completed << " completed, " << report.jobs_unplaced
     << " unplaced";
  if (report.migrations > 0) os << ", " << report.migrations << " migrated";
  if (report.watchdog_restarts > 0) {
    os << ", " << report.watchdog_restarts << " watchdog restarts";
  }
  os << "\nmakespan " << report.makespan / 3600.0 << " h, " << report.messages
     << " messages, mean time-to-award " << report.mean_award_latency << " s\n"
     << "clients spent $" << report.total_spent << " for payoff value $"
     << report.total_client_payoff << "\n\n";

  Table table{{"cluster", "utilization", "jobs", "revenue($)", "bids",
               "awards", "refused", "barter"}};
  for (const auto& c : report.clusters) {
    table.row()
        .cell(c.name)
        .cell(c.utilization, 3)
        .cell(c.completed)
        .cell(c.revenue, 2)
        .cell(c.bids_issued)
        .cell(c.awards_confirmed)
        .cell(c.awards_refused)
        .cell(c.barter_balance, 1);
  }
  table.print(os);
}

}  // namespace faucets::core
