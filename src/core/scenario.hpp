// Scenario files: describe a whole grid experiment — clusters, billing,
// workload — in a small INI file and run it. This is the scripting surface
// the command-line client of §2 would drive.
//
//   [grid]
//   billing = dollars        # dollars | su | barter
//   users = 8
//   brokered = false
//   evaluator = least-cost   # least-cost | earliest-completion | surplus
//   watchdog = -1            # seconds; omit or negative = no watchdog
//   prefer_home = false
//   price_band = 0           # §5.5.1 regulation; omit or <=1 = off
//   seed = 42
//
//   [faults]                 # optional: deterministic chaos (see DESIGN.md §8)
//   loss = 0.1               # per-message drop probability
//   jitter = 0.5             # extra uniform random delay, seconds
//   seed = 4203018869        # fault RNG seed (independent of workload seed)
//   crash_cluster = 0        # hard-crash this cluster...
//   crash_at = 120           # ...at this time...
//   crash_restart = 300      # ...and restart it here (omit = stays down)
//   partition_cluster = 1    # isolate this cluster's daemon...
//   partition_from = 50      # ...during [from, until)
//   partition_until = 90
//   retry_attempts = 4       # backoff schedule for every exchange
//   retry_base = 5.0
//
//   [cluster]                # one block per Compute Server
//   name = turing
//   procs = 512
//   cost = 0.0008            # $/cpu-second
//   speed = 1.0
//   strategy = payoff        # fcfs | backfill | equipartition | payoff | priority
//   bidgen = utilization     # baseline | utilization | market | futures
//   credits = 0              # barter opening balance
//
//   [workload]
//   jobs = 200
//   load = 0.8               # offered fraction of total grid capacity
//   rigid_fraction = 0.0
//   deadline_fraction = 1.0
//   tightness_lo = 1.5       # deadline tightness range (see JobShaping)
//   tightness_hi = 6.0
//   penalty_fraction = 0.25  # post-hard-deadline penalty
//
//   [trace]                  # replaces [workload]: stream an SWF trace
//   file = traces/month.swf  # path, relative to the scenario's cwd
//   time_compression = 4     # replay a month in a week of simulated time
//   user_multiplier = 2      # CRN-paired deterministic user clones
//   cluster_multiplier = 1
//   jitter = 60              # clone arrival jitter, seconds
//   sort_window = 0          # tolerated out-of-order raw submits, seconds
//   max_jobs = 0             # stop after N emitted jobs (0 = all)
//   read_ahead = 4096        # streaming reorder-window reservation
//   malleability = 0.5       # JobShaping keys work here too
//   deadline_fraction = 0.0
//
//   [sweep]                  # optional: parameter grid (see src/sweep/spec.hpp)
//
//   [shards]                 # optional: conservative parallel simulation
//   count = 4                # per-shard engines on worker threads (§11)
//
//   [market]                 # optional: price-history retention (§5.2.1)
//   history_capacity = 4096  # settled contracts the bounded deque keeps
//   history_window = 86400   # how far back queries look, seconds
//
//   [store]                  # optional: durable accounting state (§14)
//   dir = runs/store         # WAL + snapshot directory; required key
//   sync = batch             # none | batch | always
//   sync_every = 64          # group-commit batch size (batch only)
//   snapshot_every = 0       # settled contracts per WAL roll-up; 0 = end only
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "src/core/grid_system.hpp"
#include "src/job/source.hpp"
#include "src/job/swf.hpp"
#include "src/store/checkpoint.hpp"
#include "src/util/config.hpp"

namespace faucets::core {

/// [trace] — stream jobs from an SWF file instead of the generator.
struct TraceScenario {
  std::string path;
  job::SwfOptions options;
};

struct Scenario {
  GridConfig grid;
  std::vector<ClusterSetup> clusters;
  job::WorkloadParams workload;
  /// Engaged when the scenario has a [trace] section; the trace then
  /// replaces the synthetic generator as the workload source.
  std::optional<TraceScenario> trace;
  std::uint64_t seed = 42;

  /// Parse and validate. Throws std::invalid_argument with a useful
  /// message on unknown strategy/bidgen/billing names or missing sections.
  static Scenario parse(const ConfigFile& config);
  static Scenario parse_string(const std::string& text);

  /// Build the grid, stream the workload through it, run to completion.
  [[nodiscard]] GridReport run();

  /// Build the grid without running it. Callers that need the grid alive
  /// after the run — to export traces, metrics, or span timelines — use
  /// this together with make_source() instead of run().
  [[nodiscard]] std::unique_ptr<GridSystem> make_grid() const;

  /// The scenario's workload as a pull-based source (DESIGN.md §13):
  /// a streaming SWF reader when [trace] is present, the synthetic
  /// generator otherwise. Deterministic in `seed`.
  [[nodiscard]] std::unique_ptr<job::WorkloadSource> make_source() const;

  /// Preload compatibility: drain make_source() into a vector.
  [[nodiscard]] std::vector<job::JobRequest> make_requests() const;

  /// Total processors across all clusters (used for load calibration).
  [[nodiscard]] int total_procs() const;
};

/// Name registries, exposed for the CLI's error messages and for tests.
[[nodiscard]] StrategyFactory strategy_factory(const std::string& name);
[[nodiscard]] BidGeneratorFactory bidgen_factory(const std::string& name);
[[nodiscard]] EvaluatorFactory evaluator_factory(const std::string& name);

/// Render a GridReport as the human-readable summary the CLI prints.
void print_report(std::ostream& os, const GridReport& report);

/// Render a GridReport as one deterministic JSON object (shortest
/// round-trip number form, fixed key order). Byte-identical reports mean
/// identical runs — the sharded determinism tests and bench_shard compare
/// this output across shard counts.
void write_report_json(std::ostream& os, const GridReport& report);

/// Checkpoint glue (DESIGN.md §14). fill_checkpoint captures a *paused*
/// grid's progress fingerprint (per-shard executed counts, encoded Central
/// Server state) into `ckpt`; the caller owns scenario_text / overrides /
/// shards. verify_checkpoint re-checks a paused grid against a checkpoint at
/// its sim_time — empty string on a byte-for-byte match, otherwise a
/// description of the first mismatch.
void fill_checkpoint(store::Checkpoint& ckpt, GridSystem& grid, double sim_time);
[[nodiscard]] std::string verify_checkpoint(const store::Checkpoint& ckpt,
                                            GridSystem& grid);

}  // namespace faucets::core
