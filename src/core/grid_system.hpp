// Top-level public API: assemble a whole Faucets grid — Central Server,
// AppSpector, one Faucets Daemon + Cluster Manager per Compute Server,
// one client per user — run a workload through the market, and collect
// grid-wide metrics. This is the entry point examples and the market
// benchmarks use.
#pragma once

#include <array>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/server.hpp"
#include "src/faucets/appspector.hpp"
#include "src/obs/analyzer.hpp"
#include "src/faucets/broker.hpp"
#include "src/faucets/central.hpp"
#include "src/faucets/client.hpp"
#include "src/faucets/daemon.hpp"
#include "src/job/source.hpp"
#include "src/job/workload.hpp"
#include "src/market/bidgen.hpp"
#include "src/market/evaluation.hpp"
#include "src/sim/context.hpp"
#include "src/sim/network.hpp"
#include "src/store/store.hpp"

namespace faucets::obs {
class Profiler;
}  // namespace faucets::obs

namespace faucets::core {

using StrategyFactory = std::function<std::unique_ptr<sched::Strategy>()>;
using BidGeneratorFactory = std::function<std::unique_ptr<market::BidGenerator>()>;
using EvaluatorFactory = std::function<std::unique_ptr<market::BidEvaluator>()>;

/// One Compute Server to stand up.
struct ClusterSetup {
  cluster::MachineSpec machine;
  StrategyFactory strategy;
  BidGeneratorFactory bid_generator;
  job::AdaptiveCosts costs{};
  double barter_credits = 0.0;  // opening balance in barter mode
};

/// Take one Compute Server down at `at`. A hard crash drops every running
/// job and message silently (clients recover via watchdog + re-bid); a
/// graceful shutdown checkpoints and migrates first (§3). With `restart_at`
/// the daemon comes back under the same network address and re-registers.
struct CrashSchedule {
  std::size_t cluster = 0;
  double at = 0.0;
  std::optional<double> restart_at;
  bool graceful = false;
};

/// Isolate one Compute Server's daemon from the rest of the grid during
/// [from, until): every message to or from it is dropped as kPartitioned.
struct ClusterPartition {
  std::size_t cluster = 0;
  double from = 0.0;
  double until = 0.0;
};

/// Opt-in host-time profiling (DESIGN.md §12): per-event self-time
/// attribution, exclusive shard phase accounting, and a wall-clock timeline.
/// Profiling records into its own registry and artifacts only, so report
/// JSON / trace JSONL stay byte-identical with it on or off.
struct ProfileConfig {
  bool enabled = false;
  /// Artifact paths written at the end of run(); empty skips that artifact.
  std::string json_path;     // profile.json summary
  std::string metrics_path;  // Prometheus faucets_prof_* text
  std::string chrome_path;   // host-timeline Chrome trace
};

/// Durable persistence of the Central Server's accounting state
/// (DESIGN.md §14). With a directory set, the grid opens a DurableStore
/// there, takes the generation-1 snapshot of the empty image before any
/// state mutates, journals every ledger / account / user / price mutation
/// through the WAL, and snapshots again at the end of a clean run. After a
/// crash, store::recover_central_state() rebuilds the exact state.
struct StoreConfig {
  std::string dir;  // empty = no durability (in-memory only)
  store::SyncPolicy sync = store::SyncPolicy::kBatch;
  std::size_t sync_every = 64;  // group-commit batch (kBatch only)
  /// Roll the WAL into a fresh snapshot after this many settled contracts;
  /// 0 keeps only the initial and end-of-run snapshots.
  std::uint64_t snapshot_every = 0;
};

/// Periodic time-series sampling of registered telemetry signals.
struct TelemetryConfig {
  /// Seconds between sampler snapshots; 0 disables sampling entirely (no
  /// periodic event is armed, so fault-free runs pay nothing).
  double sample_interval = 0.0;
  /// Point budget per series; buffers downsample past it (see
  /// src/obs/sampler.hpp).
  std::size_t series_capacity = 512;
};

struct GridConfig {
  CentralServerConfig central{};
  sim::NetworkConfig network{};
  DaemonConfig daemon{};
  EvaluatorFactory evaluator;       // defaults to least-cost
  bool clients_prefer_home = false; // §5.5.3 home-cluster-first submission
  double user_initial_funds = 1e6;
  /// Client babysitting watchdog margin (seconds past the promised
  /// completion before a silent job is restarted). Disengaged = no
  /// watchdog. (The old `< 0` sentinel is gone; see DESIGN.md §8.)
  std::optional<double> client_watchdog_margin;
  /// Brokered submission (§5.3): clients hand each job to a broker agent
  /// colocated with the Central Server instead of broadcasting
  /// request-for-bids themselves. `criteria` is the user-specific
  /// selection rule the agent applies.
  bool brokered_submission = false;
  proto::SelectionCriteria broker_criteria = proto::SelectionCriteria::kLeastCost;
  /// Deterministic fault injection (message loss, delay jitter, entity
  /// partitions keyed by EntityId). Cluster-indexed partitions and crashes
  /// go in `partitions` / `crashes` below; they are resolved to daemon
  /// entities once the grid is built.
  sim::FaultConfig faults{};
  std::vector<ClusterPartition> partitions;
  std::vector<CrashSchedule> crashes;
  /// Backoff schedule shared by clients, daemons, and the broker for every
  /// retried exchange (login, directory, registration, reserve/commit).
  RetryPolicy retry{};
  /// Periodic telemetry sampling; off by default.
  TelemetryConfig telemetry{};
  /// Number of simulation shards (parallel sim::Engines synchronized at
  /// conservative lookahead barriers; DESIGN.md §11). 0 — the default — is
  /// the classic single global event loop, bit-for-bit unchanged. Any
  /// explicit count >= 1 (including 1) selects the conservative parallel
  /// executor, whose canonical event order is byte-identical at every shard
  /// count. Sharded runs require a positive WAN base_latency — it is the
  /// lookahead.
  std::size_t shards = 0;
  /// Host-time profiling; off by default (and compiled out entirely with
  /// -DFAUCETS_PROFILE=0, in which case enabling is a no-op).
  ProfileConfig profile{};
  /// Durable persistence; off by default (empty dir).
  StoreConfig store{};
};

/// Per-cluster results after a run.
struct ClusterReport {
  std::string name;
  ClusterId id;
  double utilization = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double revenue = 0.0;
  double payoff_earned = 0.0;
  std::uint64_t bids_issued = 0;
  std::uint64_t bids_declined = 0;
  std::uint64_t awards_confirmed = 0;
  std::uint64_t awards_refused = 0;
  double barter_balance = 0.0;
};

/// Grid-wide accounting summary: the credit-conservation invariant the CI
/// asserts (§5.5.3 — transfers move credits, they never mint them).
struct LedgerReport {
  bool barter = false;            // billing mode was kBarter
  double opening_credits = 0.0;   // ledger total right after construction
  double total_credits = 0.0;     // ledger total now
  /// total - opening; conservation keeps it within float rounding of the
  /// transferred volume (each paired -= / += rounds once per side), so the
  /// CI asserts |residual| <= 1e-9, matching the accounting unit tests.
  double conservation_residual = 0.0;
  std::uint64_t transfers = 0;    // settled cross-cluster barter moves
  double total_charged = 0.0;     // dollars/SU billed in pay-per-use modes
};

struct GridReport {
  std::vector<ClusterReport> clusters;
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_unplaced = 0;
  double total_spent = 0.0;
  double total_client_payoff = 0.0;
  double mean_award_latency = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t network_bytes = 0;
  /// Per-kind traffic, indexed by sim::MessageKind (see sent_of/delivered_of).
  std::array<std::uint64_t, sim::kMessageKindCount> messages_sent_by_kind{};
  std::array<std::uint64_t, sim::kMessageKindCount> messages_delivered_by_kind{};
  std::uint64_t migrations = 0;         // checkpoint moves between servers
  std::uint64_t watchdog_restarts = 0;  // from-scratch restarts after crashes
  double makespan = 0.0;
  /// Mean seconds each submission spent in every exclusive latency phase
  /// (indexed by obs::Phase); all zero when no submission closed.
  std::array<double, obs::kPhaseCount> phase_mean_seconds{};
  /// Per-cluster balances live in `clusters`; this is the grid-wide view.
  LedgerReport ledger{};

  [[nodiscard]] double grid_utilization_weighted() const;
  [[nodiscard]] std::uint64_t sent_of(sim::MessageKind kind) const noexcept {
    return messages_sent_by_kind[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t delivered_of(sim::MessageKind kind) const noexcept {
    return messages_delivered_by_kind[static_cast<std::size_t>(kind)];
  }
};

/// Everything the span analyzer derived from one run: per-job phase
/// decompositions plus deadline-outcome accounting per user and per cluster.
struct GridTelemetry {
  obs::SpanAnalysis analysis;
  std::vector<obs::DeadlineRow> users;     // one row per user, index order
  std::vector<obs::DeadlineRow> clusters;  // one row per cluster, index order
};

/// Owns every entity of one simulated grid.
class GridSystem {
 public:
  GridSystem(GridConfig config, std::vector<ClusterSetup> clusters,
             std::size_t user_count);
  ~GridSystem();
  GridSystem(const GridSystem&) = delete;
  GridSystem& operator=(const GridSystem&) = delete;

  /// Stream `source` through the grid (DESIGN.md §13): a WorkloadDemux
  /// routes each request to its user's client lane, every client re-arms a
  /// single submission timer off its lane, and the discrete event
  /// simulation runs until quiescent (or `until`). Memory is bounded by
  /// the demux's read-ahead, not the workload length. This is the one way
  /// jobs enter the system.
  GridReport run(job::WorkloadSource& source,
                 double until = sim::Engine::kForever);

  /// Preload compatibility adapter: wraps the vector in a VectorSource.
  GridReport run(std::vector<job::JobRequest> requests,
                 double until = sim::Engine::kForever);

  /// Streaming buffer high-water mark of the last run's demux (the
  /// read-ahead memory bound BENCH_replay reports).
  [[nodiscard]] std::size_t workload_high_water() const noexcept {
    return workload_high_water_;
  }

  [[nodiscard]] sim::SimContext& context() noexcept { return ctx_; }
  /// Context owning shard `s`'s engine/network/observability (0 = context()).
  [[nodiscard]] sim::SimContext& shard_context(std::size_t s) noexcept {
    return s == 0 ? ctx_ : *extra_ctx_.at(s - 1);
  }
  [[nodiscard]] const sim::SimContext& shard_context(std::size_t s) const noexcept {
    return s == 0 ? ctx_ : *extra_ctx_.at(s - 1);
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return extra_ctx_.size() + 1;
  }
  /// Owning shard of cluster `i` / client `u` (always 0 when unsharded).
  [[nodiscard]] std::size_t shard_of_cluster(std::size_t i) const {
    return daemon_shard_.at(i);
  }
  [[nodiscard]] std::size_t shard_of_client(std::size_t u) const {
    return client_shard_.at(u);
  }
  [[nodiscard]] sim::Engine& engine() noexcept { return ctx_.engine(); }
  [[nodiscard]] sim::Network& network() noexcept { return ctx_.network(); }
  [[nodiscard]] sim::TraceSink& trace() noexcept { return ctx_.trace(); }
  [[nodiscard]] obs::Observability& obs() noexcept { return ctx_.obs(); }
  [[nodiscard]] const obs::Observability& obs() const noexcept { return ctx_.obs(); }
  [[nodiscard]] CentralServer& central() noexcept { return *central_; }
  [[nodiscard]] AppSpector& appspector() noexcept { return *appspector_; }
  [[nodiscard]] BrokerAgent* broker() noexcept { return broker_.get(); }
  [[nodiscard]] FaucetsDaemon& daemon(std::size_t i) { return *daemons_.at(i); }
  [[nodiscard]] FaucetsClient& client(std::size_t i) { return *clients_.at(i); }
  [[nodiscard]] std::size_t cluster_count() const noexcept { return daemons_.size(); }
  [[nodiscard]] std::size_t client_count() const noexcept { return clients_.size(); }

  /// Take cluster `i` down gracefully at simulated time `when`: running
  /// jobs checkpoint and migrate (§3). Pass `graceful = false` for a crash
  /// with no eviction notices (clients need the watchdog to recover).
  void schedule_cluster_shutdown(std::size_t i, double when, bool graceful = true);

  /// Bring a crashed cluster `i` back at `when`: the daemon reattaches
  /// under its old network address and re-registers with the Central
  /// Server (with retry, in case the registration races a partition).
  void schedule_cluster_restart(std::size_t i, double when);

  /// Build the report from current state (run() calls this at the end).
  [[nodiscard]] GridReport report() const;

  /// The durable store backing the Central Server, when GridConfig::store
  /// names a directory; null otherwise.
  [[nodiscard]] store::StateStore* store() noexcept { return store_.get(); }

  /// Fire `hook` once, the first time simulated time reaches `at` during the
  /// next run() — after an event boundary (classic loop) or at a lookahead
  /// barrier with every worker idle (sharded), so the grid is globally
  /// consistent when it runs. Return true to continue the run; false
  /// abandons it (run() returns promptly with partial state — the warm-fork
  /// parent's path, whose report is discarded).
  void set_pause_hook(double at, std::function<bool()> hook) {
    pause_at_ = at;
    pause_hook_ = std::move(hook);
  }

  /// Swap the stochastic fault treatment (loss, jitter) on every shard's
  /// network without reseeding the injector streams. Used by forked warm
  /// runs at the activation boundary; see sim::FaultInjector::set_treatment.
  void set_fault_treatment(double loss_rate, double jitter) noexcept {
    for (std::size_t s = 0; s < shard_count(); ++s) {
      shard_context(s).network().set_fault_treatment(loss_rate, jitter);
    }
  }

  /// Per-shard executed-event counts — the checkpoint's progress
  /// fingerprint (index 0 = shard 0 / the classic engine).
  [[nodiscard]] std::vector<std::uint64_t> executed_counts() const {
    std::vector<std::uint64_t> out;
    for (std::size_t s = 0; s < shard_count(); ++s) {
      out.push_back(shard_context(s).engine().executed());
    }
    return out;
  }

  // --- shard-count-independent observability views -------------------------
  // In a sharded run each shard records into its own registry / span tracker
  // / trace ring; these return the deterministic merge (built lazily, cached
  // until the next run()). Unsharded they alias context()'s objects, so
  // exporters can use them unconditionally. merged_trace() always
  // materializes a TraceView (cheap copy of surviving events).
  [[nodiscard]] const obs::MetricsRegistry& merged_metrics() const;
  [[nodiscard]] const obs::SpanTracker& merged_spans() const;
  [[nodiscard]] obs::TraceView merged_trace() const;

  /// Analyze the span trees and join them with the clients' submission
  /// outcomes. Callable any time; run() caches the end-of-run analysis so a
  /// post-run call costs one join, not a re-walk.
  [[nodiscard]] GridTelemetry telemetry() const;

  /// The host-time profiler, when GridConfig::profile.enabled (and the build
  /// keeps FAUCETS_PROFILE on); null otherwise. Phase decompositions and
  /// window stats are valid after run().
  [[nodiscard]] const obs::Profiler* profiler() const noexcept {
    return profiler_.get();
  }

 private:
  struct MergedObs {
    obs::MetricsRegistry metrics;
    obs::SpanTracker spans;
    obs::TraceView trace;
  };

  void maybe_sample();
  void maybe_sample_shard(std::size_t s);
  /// Fire the pause hook if due; false = the hook abandoned the run.
  bool maybe_pause(double now);
  [[nodiscard]] const obs::SpanAnalysis& analysis() const;
  [[nodiscard]] MergedObs& ensure_merged() const;
  void run_sharded(double until, const std::function<bool()>& all_done);
  void run_shard_window(std::size_t s, double window_end, double cap);
  void replay_history();
  void setup_profiler();
  void write_profile_artifacts() const;

  GridConfig config_;
  // The router outlives every context (networks hold a raw pointer into it).
  std::unique_ptr<sim::ShardRouter> router_;
  sim::SimContext ctx_;                                     // shard 0
  std::vector<std::unique_ptr<sim::SimContext>> extra_ctx_; // shards 1..N-1
  std::unique_ptr<store::StateStore> store_;                // null = no durability
  std::unique_ptr<CentralServer> central_;
  std::unique_ptr<AppSpector> appspector_;
  std::unique_ptr<BrokerAgent> broker_;
  std::vector<std::unique_ptr<BrokerAgent>> peer_brokers_;  // shards 1..N-1
  std::vector<std::unique_ptr<FaucetsDaemon>> daemons_;
  std::vector<std::unique_ptr<FaucetsClient>> clients_;
  std::vector<std::size_t> daemon_shard_;
  std::vector<std::size_t> client_shard_;
  // Per-shard lagged replicas of the Central Server's contract history
  // ("grid weather", §5.2.1), replayed from its journal at every barrier.
  std::vector<market::PriceHistory> history_replicas_;
  std::size_t history_applied_ = 0;  // journal prefix already replayed
  // Cross-shard envelope staging: sorted per-destination lists plus the
  // count of already-delivered entries at each list's front.
  std::vector<std::vector<sim::ShardRouter::Envelope>> staged_;
  std::vector<std::size_t> consumed_;
  // Live only inside run(): the demux feeding the clients' lanes. Sharded
  // runs refill it at every barrier (workers idle) so no client chain can
  // starve mid-window.
  job::WorkloadDemux* demux_ = nullptr;
  std::size_t workload_high_water_ = 0;
  double makespan_ = 0.0;  // set by run(); report() uses it when sharded
  double opening_credits_ = 0.0;  // ledger total right after construction
  // One-shot pause hook (checkpointing, warm-state forking); +inf = unarmed.
  double pause_at_ = std::numeric_limits<double>::infinity();
  std::function<bool()> pause_hook_;
  bool pause_fired_ = false;
  bool abandoned_ = false;  // the hook told run() to bail out
  // Sim-time of the next sampler snapshot; +inf when sampling is disabled so
  // the run loop's check is one always-false branch. See maybe_sample().
  double next_sample_due_ = std::numeric_limits<double>::infinity();
  std::vector<double> shard_sample_due_;  // per-shard due times (sharded)
  mutable std::optional<obs::SpanAnalysis> analysis_;  // cached by run()
  mutable std::optional<MergedObs> merged_;            // cached merge
  // Host-time profiler (null unless config_.profile.enabled): its own
  // registry and artifacts, never the simulation's.
  std::unique_ptr<obs::Profiler> profiler_;
};

/// Fluent construction of a GridSystem. Replaces hand-assembled
/// GridConfig / ClusterSetup aggregates in examples and tests:
///
///   auto grid = GridBuilder()
///                   .central({.poll_interval = 30.0})
///                   .cluster(spec, fifo_factory, bidgen_factory)
///                   .users(8)
///                   .watchdog(60.0)
///                   .loss(0.10)
///                   .crash(0, 120.0, /*restart_at=*/300.0)
///                   .build();
///
/// build() validates the assembled grid (at least one cluster, no
/// zero-processor machines, non-null factories, crash/partition indices in
/// range) and throws std::invalid_argument with a precise message instead
/// of failing deep inside the constructor. The old positional
/// GridSystem(GridConfig, clusters, users) constructor stays available as
/// the internal representation (benchmarks construct it directly).
class GridBuilder {
 public:
  GridBuilder& central(CentralServerConfig config) {
    config_.central = std::move(config);
    return *this;
  }
  GridBuilder& network(sim::NetworkConfig config) {
    config_.network = config;
    return *this;
  }
  GridBuilder& daemon(DaemonConfig config) {
    config_.daemon = config;
    return *this;
  }
  GridBuilder& evaluator(EvaluatorFactory factory) {
    config_.evaluator = std::move(factory);
    return *this;
  }
  GridBuilder& users(std::size_t count) {
    users_ = count;
    return *this;
  }
  GridBuilder& user_funds(double funds) {
    config_.user_initial_funds = funds;
    return *this;
  }
  /// Engage the babysitting watchdog with the given margin in seconds.
  GridBuilder& watchdog(double margin) {
    config_.client_watchdog_margin = margin;
    return *this;
  }
  GridBuilder& prefer_home(bool on = true) {
    config_.clients_prefer_home = on;
    return *this;
  }
  GridBuilder& brokered(
      proto::SelectionCriteria criteria = proto::SelectionCriteria::kLeastCost) {
    config_.brokered_submission = true;
    config_.broker_criteria = criteria;
    return *this;
  }
  GridBuilder& retry(RetryPolicy policy) {
    config_.retry = policy;
    return *this;
  }
  /// Snapshot registered telemetry signals every `interval` sim-seconds into
  /// fixed-capacity downsampling buffers (the HTML report's time series).
  GridBuilder& sampling(double interval, std::size_t capacity = 512) {
    config_.telemetry.sample_interval = interval;
    config_.telemetry.series_capacity = capacity;
    return *this;
  }
  /// Replace the whole fault configuration at once.
  GridBuilder& faults(sim::FaultConfig faults) {
    config_.faults = std::move(faults);
    return *this;
  }
  /// Drop each message independently with this probability.
  GridBuilder& loss(double rate) {
    config_.faults.loss_rate = rate;
    return *this;
  }
  /// Add up to this many seconds of uniform random extra delay per message.
  GridBuilder& jitter(double seconds) {
    config_.faults.jitter = seconds;
    return *this;
  }
  GridBuilder& fault_seed(std::uint64_t seed) {
    config_.faults.seed = seed;
    return *this;
  }
  /// Hard-crash cluster `index` at `at`; optionally restart it later.
  GridBuilder& crash(std::size_t index, double at,
                     std::optional<double> restart_at = std::nullopt) {
    config_.crashes.push_back({index, at, restart_at, /*graceful=*/false});
    return *this;
  }
  /// Gracefully drain cluster `index` at `at` (checkpoint + migrate, §3).
  GridBuilder& drain(std::size_t index, double at) {
    config_.crashes.push_back({index, at, std::nullopt, /*graceful=*/true});
    return *this;
  }
  /// Isolate cluster `index`'s daemon from the network during [from, until).
  GridBuilder& partition(std::size_t index, double from, double until) {
    config_.partitions.push_back({index, from, until});
    return *this;
  }
  /// Partition the grid across `count` parallel simulation shards
  /// (DESIGN.md §11). Any explicit count (including 1) opts into the
  /// canonical parallel executor; leave unset for the classic
  /// single-engine loop.
  GridBuilder& shards(std::size_t count) {
    config_.shards = count;
    return *this;
  }
  /// Enable host-time profiling (DESIGN.md §12). Pass a ProfileConfig to
  /// also write profile.json / Prometheus / Chrome-trace artifacts at the
  /// end of run(); the no-argument form keeps everything in memory for
  /// GridSystem::profiler().
  GridBuilder& profile(ProfileConfig config = {}) {
    config_.profile = std::move(config);
    config_.profile.enabled = true;
    return *this;
  }
  GridBuilder& cluster(ClusterSetup setup) {
    clusters_.push_back(std::move(setup));
    return *this;
  }
  GridBuilder& cluster(cluster::MachineSpec machine, StrategyFactory strategy,
                       BidGeneratorFactory bid_generator,
                       job::AdaptiveCosts costs = {},
                       double barter_credits = 0.0) {
    clusters_.push_back({std::move(machine), std::move(strategy),
                         std::move(bid_generator), costs, barter_credits});
    return *this;
  }

  /// Validate and assemble. Throws std::invalid_argument on a bad grid.
  [[nodiscard]] std::unique_ptr<GridSystem> build();

 private:
  GridConfig config_;
  std::vector<ClusterSetup> clusters_;
  std::size_t users_ = 1;
};

}  // namespace faucets::core
