// Top-level public API: assemble a whole Faucets grid — Central Server,
// AppSpector, one Faucets Daemon + Cluster Manager per Compute Server,
// one client per user — run a workload through the market, and collect
// grid-wide metrics. This is the entry point examples and the market
// benchmarks use.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/server.hpp"
#include "src/faucets/appspector.hpp"
#include "src/faucets/broker.hpp"
#include "src/faucets/central.hpp"
#include "src/faucets/client.hpp"
#include "src/faucets/daemon.hpp"
#include "src/job/workload.hpp"
#include "src/market/bidgen.hpp"
#include "src/market/evaluation.hpp"
#include "src/sim/context.hpp"
#include "src/sim/network.hpp"

namespace faucets::core {

using StrategyFactory = std::function<std::unique_ptr<sched::Strategy>()>;
using BidGeneratorFactory = std::function<std::unique_ptr<market::BidGenerator>()>;
using EvaluatorFactory = std::function<std::unique_ptr<market::BidEvaluator>()>;

/// One Compute Server to stand up.
struct ClusterSetup {
  cluster::MachineSpec machine;
  StrategyFactory strategy;
  BidGeneratorFactory bid_generator;
  job::AdaptiveCosts costs{};
  double barter_credits = 0.0;  // opening balance in barter mode
};

struct GridConfig {
  CentralServerConfig central{};
  sim::NetworkConfig network{};
  DaemonConfig daemon{};
  EvaluatorFactory evaluator;       // defaults to least-cost
  bool clients_prefer_home = false; // §5.5.3 home-cluster-first submission
  double user_initial_funds = 1e6;
  /// Client babysitting watchdog margin (seconds past the promised
  /// completion before a silent job is restarted); negative disables.
  double client_watchdog_margin = -1.0;
  /// Brokered submission (§5.3): clients hand each job to a broker agent
  /// colocated with the Central Server instead of broadcasting
  /// request-for-bids themselves. `criteria` is the user-specific
  /// selection rule the agent applies.
  bool brokered_submission = false;
  proto::SelectionCriteria broker_criteria = proto::SelectionCriteria::kLeastCost;
};

/// Per-cluster results after a run.
struct ClusterReport {
  std::string name;
  ClusterId id;
  double utilization = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double revenue = 0.0;
  double payoff_earned = 0.0;
  std::uint64_t bids_issued = 0;
  std::uint64_t bids_declined = 0;
  std::uint64_t awards_confirmed = 0;
  std::uint64_t awards_refused = 0;
  double barter_balance = 0.0;
};

struct GridReport {
  std::vector<ClusterReport> clusters;
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_unplaced = 0;
  double total_spent = 0.0;
  double total_client_payoff = 0.0;
  double mean_award_latency = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t network_bytes = 0;
  /// Per-kind traffic, indexed by sim::MessageKind (see sent_of/delivered_of).
  std::array<std::uint64_t, sim::kMessageKindCount> messages_sent_by_kind{};
  std::array<std::uint64_t, sim::kMessageKindCount> messages_delivered_by_kind{};
  std::uint64_t migrations = 0;         // checkpoint moves between servers
  std::uint64_t watchdog_restarts = 0;  // from-scratch restarts after crashes
  double makespan = 0.0;

  [[nodiscard]] double grid_utilization_weighted() const;
  [[nodiscard]] std::uint64_t sent_of(sim::MessageKind kind) const noexcept {
    return messages_sent_by_kind[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t delivered_of(sim::MessageKind kind) const noexcept {
    return messages_delivered_by_kind[static_cast<std::size_t>(kind)];
  }
};

/// Owns every entity of one simulated grid.
class GridSystem {
 public:
  GridSystem(GridConfig config, std::vector<ClusterSetup> clusters,
             std::size_t user_count);
  ~GridSystem();
  GridSystem(const GridSystem&) = delete;
  GridSystem& operator=(const GridSystem&) = delete;

  /// Distribute the requests to the per-user clients and run the discrete
  /// event simulation until quiescent (or `until`).
  GridReport run(std::vector<job::JobRequest> requests,
                 double until = sim::Engine::kForever);

  [[nodiscard]] sim::SimContext& context() noexcept { return ctx_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return ctx_.engine(); }
  [[nodiscard]] sim::Network& network() noexcept { return ctx_.network(); }
  [[nodiscard]] sim::TraceSink& trace() noexcept { return ctx_.trace(); }
  [[nodiscard]] obs::Observability& obs() noexcept { return ctx_.obs(); }
  [[nodiscard]] const obs::Observability& obs() const noexcept { return ctx_.obs(); }
  [[nodiscard]] CentralServer& central() noexcept { return *central_; }
  [[nodiscard]] AppSpector& appspector() noexcept { return *appspector_; }
  [[nodiscard]] BrokerAgent* broker() noexcept { return broker_.get(); }
  [[nodiscard]] FaucetsDaemon& daemon(std::size_t i) { return *daemons_.at(i); }
  [[nodiscard]] FaucetsClient& client(std::size_t i) { return *clients_.at(i); }
  [[nodiscard]] std::size_t cluster_count() const noexcept { return daemons_.size(); }
  [[nodiscard]] std::size_t client_count() const noexcept { return clients_.size(); }

  /// Take cluster `i` down gracefully at simulated time `when`: running
  /// jobs checkpoint and migrate (§3). Pass `graceful = false` for a crash
  /// with no eviction notices (clients need the watchdog to recover).
  void schedule_cluster_shutdown(std::size_t i, double when, bool graceful = true);

  /// Build the report from current state (run() calls this at the end).
  [[nodiscard]] GridReport report() const;

 private:
  GridConfig config_;
  sim::SimContext ctx_;
  std::unique_ptr<CentralServer> central_;
  std::unique_ptr<AppSpector> appspector_;
  std::unique_ptr<BrokerAgent> broker_;
  std::vector<std::unique_ptr<FaucetsDaemon>> daemons_;
  std::vector<std::unique_ptr<FaucetsClient>> clients_;
};

}  // namespace faucets::core
