#include "src/core/grid_system.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "src/obs/profiler.hpp"
#include "src/sweep/thread_pool.hpp"

namespace faucets::core {

double GridReport::grid_utilization_weighted() const {
  // Weight by completed work share is unavailable here; weight by cluster
  // count-free utilization is misleading, so weight by nothing: callers get
  // the simple mean across clusters (clusters in one experiment share a
  // size unless stated otherwise).
  if (clusters.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& c : clusters) sum += c.utilization;
  return sum / static_cast<double>(clusters.size());
}

GridSystem::GridSystem(GridConfig config, std::vector<ClusterSetup> clusters,
                       std::size_t user_count)
    : config_(std::move(config)),
      router_(config_.shards >= 1
                  ? std::make_unique<sim::ShardRouter>(config_.shards)
                  : nullptr),
      ctx_(sim::SimConfig{.network = config_.network, .router = router_.get()}) {
  if (clusters.empty()) throw std::invalid_argument("grid needs >= 1 cluster");
  if (user_count == 0) throw std::invalid_argument("grid needs >= 1 user");
  if (router_ != nullptr && config_.network.base_latency <= 0.0) {
    throw std::invalid_argument(
        "sharded grid needs base_latency > 0 (it is the conservative lookahead)");
  }
  for (std::size_t s = 1; s < config_.shards; ++s) {
    extra_ctx_.push_back(std::make_unique<sim::SimContext>(
        sim::SimConfig{.network = config_.network,
                       .router = router_.get(),
                       .shard = static_cast<std::uint32_t>(s)}));
  }

  // The point budget must be in place before any entity registers a series,
  // and span journaling before any entity opens a span: journal-mode ids are
  // shard-tagged from the first span on.
  for (std::size_t s = 0; s < shard_count(); ++s) {
    shard_context(s).sampler().set_default_capacity(config_.telemetry.series_capacity);
  }
  if (router_ != nullptr) {
    for (std::size_t s = 0; s < shard_count(); ++s) {
      sim::SimContext& c = shard_context(s);
      c.spans().enable_journal(
          static_cast<std::uint32_t>(s), [eng = &c.engine()] {
            const sim::Engine::ExecStamp st = eng->exec_stamp();
            obs::SpanTracker::Stamp out;
            out.time = eng->now();
            out.rank = st.rank;
            out.creator = st.creator;
            out.cseq = st.cseq;
            return out;
          });
    }
  }

  central_ = std::make_unique<CentralServer>(ctx_, config_.central);
  if (!config_.store.dir.empty()) {
    store_ = std::make_unique<store::DurableStore>(
        config_.store.dir,
        store::DurableOptions{config_.store.sync, config_.store.sync_every});
    // Generation 1 is the empty image, taken before any state exists: every
    // registration and account opening below lands in the WAL, so recovery
    // is always "empty snapshot + full op history" or a later roll-up of it.
    store_->snapshot("");
    central_->attach_store(store_.get(), config_.store.snapshot_every);
  }
  appspector_ = std::make_unique<AppSpector>(ctx_);
  if (config_.brokered_submission) {
    BrokerConfig broker_config;
    broker_config.retry = config_.retry;
    broker_ = std::make_unique<BrokerAgent>(ctx_, central_->id(), broker_config);
    if (router_ != nullptr) {
      // One peer broker per extra shard: clients submit to their own shard's
      // broker, and RFB rounds for remote servers are forwarded between
      // brokers as one grouped message per shard instead of per-server
      // broadcasts through shard 0.
      for (std::size_t s = 1; s < shard_count(); ++s) {
        peer_brokers_.push_back(std::make_unique<BrokerAgent>(
            shard_context(s), central_->id(), broker_config));
      }
      std::vector<EntityId> by_shard(shard_count());
      by_shard[0] = broker_->id();
      for (std::size_t s = 1; s < shard_count(); ++s) {
        by_shard[s] = peer_brokers_[s - 1]->id();
      }
      broker_->set_peering(0, by_shard, router_.get());
      for (std::size_t s = 1; s < shard_count(); ++s) {
        peer_brokers_[s - 1]->set_peering(static_cast<std::uint32_t>(s), by_shard,
                                          router_.get());
      }
    }
  }

  // Sharded runs read the Central Server's contract history ("grid weather",
  // §5.2.1) through per-shard replicas replayed from its journal at lookahead
  // barriers, with queries lagged by one lookahead so every shard — including
  // the central's own — sees the same prefix at every shard count.
  const double lookahead = config_.network.base_latency;
  if (router_ != nullptr) {
    central_->mutable_price_history().enable_journal();
    history_replicas_.reserve(shard_count());
    for (std::size_t s = 0; s < shard_count(); ++s) {
      history_replicas_.emplace_back(central_->price_history().capacity(),
                                     central_->price_history().window());
    }
  }

  // Stand up one daemon + cluster manager per Compute Server. Contiguous
  // partitioning: cluster i lives on shard i*N/C, so id-adjacent clusters
  // share a shard and the merge tie-break (src shard order) coincides with
  // entity-id order for structured fan-out patterns.
  DaemonConfig daemon_config = config_.daemon;
  daemon_config.retry = config_.retry;
  daemon_shard_.resize(clusters.size(), 0);
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    const std::size_t shard =
        router_ != nullptr ? i * config_.shards / clusters.size() : 0;
    daemon_shard_[i] = shard;
    sim::SimContext& c = shard_context(shard);
    ClusterSetup& setup = clusters[i];
    const ClusterId cluster_id{i};
    auto cm = std::make_unique<cluster::ClusterManager>(
        c, setup.machine, setup.strategy(), setup.costs, cluster_id);
    auto daemon = std::make_unique<FaucetsDaemon>(
        c, cluster_id, std::move(cm), setup.bid_generator(),
        central_->id(), appspector_->id(), daemon_config);
    if (router_ != nullptr) {
      daemon->set_grid_history(&history_replicas_[shard], lookahead);
    } else {
      daemon->set_grid_history(&central_->price_history());
    }
    daemon->register_with_central();
    if (config_.central.billing == BillingMode::kBarter) {
      central_->open_barter_account(cluster_id, setup.barter_credits);
    }
    daemons_.push_back(std::move(daemon));
  }

  // Fault plan: cluster-indexed partitions resolve to daemon entities now
  // that the daemons exist; crashes (and restarts) become scheduled events.
  // Every shard's network gets the full fault plan — partitions are
  // sender-side (id, time) checks, so any shard can drop traffic to or from
  // an isolated daemon.
  sim::FaultConfig faults = config_.faults;
  for (const auto& p : config_.partitions) {
    faults.partitions.push_back(
        {daemons_.at(p.cluster)->id(), p.from, p.until});
  }
  // An armed activation gate means a loss/jitter treatment may be swapped
  // in at the boundary (warm-state forking), so such a grid provisions for
  // chaos even when its warm prefix is fault-free — otherwise a forked cell
  // and a from-scratch cell would disagree on construction-time knobs like
  // bid_rounds and diverge after the boundary.
  const bool chaos = faults.any() || faults.active_from > 0.0 ||
                     !config_.crashes.empty();
  for (std::size_t s = 0; s < shard_count(); ++s) {
    shard_context(s).network().set_faults(faults);
  }
  for (const auto& c : config_.crashes) {
    schedule_cluster_shutdown(c.cluster, c.at, c.graceful);
    if (c.restart_at) schedule_cluster_restart(c.cluster, *c.restart_at);
  }

  // One client per user, each with an account at the Central Server. Users
  // get round-robin home clusters; user u lives on shard u*N/U.
  client_shard_.resize(user_count, 0);
  for (std::size_t u = 0; u < user_count; ++u) {
    const std::size_t shard = router_ != nullptr ? u * config_.shards / user_count : 0;
    client_shard_[u] = shard;
    const std::string username = "user" + std::to_string(u);
    const std::string password = "pw-" + std::to_string(u * 7919 + 13);
    const ClusterId home{u % daemons_.size()};
    const auto uid = central_->register_user(username, password, home);
    if (!uid) throw std::logic_error("duplicate user " + username);
    central_->user_accounts().deposit(*uid, config_.user_initial_funds);

    ClientConfig cc;
    cc.username = username;
    cc.password = password;
    cc.watchdog_margin = config_.client_watchdog_margin;
    cc.retry = config_.retry;
    // Under chaos a lost bid round must not strand the job: give clients a
    // full backoff schedule of fresh RFB rounds. Fault-free grids keep the
    // paper's one-shot market.
    cc.bid_rounds = chaos ? config_.retry.max_attempts : 1;
    if (config_.clients_prefer_home) cc.home_cluster = home;
    if (broker_) {
      cc.broker = (router_ != nullptr && shard != 0)
                      ? peer_brokers_[shard - 1]->id()
                      : broker_->id();
      cc.criteria = config_.broker_criteria;
    }
    auto evaluator = config_.evaluator
                         ? config_.evaluator()
                         : std::make_unique<market::LeastCostEvaluator>();
    clients_.push_back(std::make_unique<FaucetsClient>(
        shard_context(shard), central_->id(), std::move(evaluator), std::move(cc)));
  }

  if (config_.telemetry.sample_interval > 0.0) {
    next_sample_due_ = config_.telemetry.sample_interval;
  }
  shard_sample_due_.assign(shard_count(), next_sample_due_);

  // Tag every entity with its coarse category so the host-time profiler can
  // attribute per-event self time by entity type. The byte is inert (and the
  // tagging deterministic) when profiling is off.
  central_->set_profile_class(static_cast<std::uint8_t>(obs::ProfClass::kCentral));
  appspector_->set_profile_class(
      static_cast<std::uint8_t>(obs::ProfClass::kAppSpector));
  if (broker_) {
    broker_->set_profile_class(static_cast<std::uint8_t>(obs::ProfClass::kBroker));
  }
  for (auto& b : peer_brokers_) {
    b->set_profile_class(static_cast<std::uint8_t>(obs::ProfClass::kBroker));
  }
  for (auto& d : daemons_) {
    d->set_profile_class(static_cast<std::uint8_t>(obs::ProfClass::kDaemon));
  }
  for (auto& c : clients_) {
    c->set_profile_class(static_cast<std::uint8_t>(obs::ProfClass::kClient));
  }
  // Conservation baseline: every account is open and no transfer has run
  // yet, so this is the sum of the clusters' opening contributions.
  opening_credits_ = std::as_const(*central_).barter_ledger().total_credits();
  setup_profiler();
}

void GridSystem::setup_profiler() {
#if FAUCETS_PROFILE
  if (!config_.profile.enabled) return;
  obs::ProfilerConfig pc;
  pc.lanes = shard_count();
  pc.lookahead = router_ != nullptr ? config_.network.base_latency : 0.0;
  // Timeline slices only exist for windowed (sharded) execution; the
  // single-engine loop is one execute span, so skip the ring's megabyte —
  // construction cost is part of the measured enable-overhead budget.
  if (router_ == nullptr) pc.timeline_capacity = 0;
  profiler_ = std::make_unique<obs::Profiler>(pc);
  profiler_->set_kind_name(0, "timer");
  for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
    profiler_->set_kind_name(
        1 + k,
        std::string(sim::to_string(static_cast<sim::MessageKind>(k))));
  }
  for (std::size_t s = 0; s < shard_count(); ++s) {
    shard_context(s).engine().set_profiler(&profiler_->lane(s));
    shard_context(s).network().set_profiler(&profiler_->lane(s));
  }
#endif
}

void GridSystem::write_profile_artifacts() const {
  if (profiler_ == nullptr) return;
  if (config_.profile.json_path.empty() && config_.profile.metrics_path.empty() &&
      config_.profile.chrome_path.empty()) {
    return;  // nothing to export: skip the registry build entirely
  }
  // Building the faucets_prof_* registry (~50 named instruments) costs far
  // more than the whole hot path on a short run, so it's paid here — at
  // export time — not inside run().
  profiler_->finalize();
  if (!config_.profile.json_path.empty()) {
    std::ofstream os{config_.profile.json_path};
    profiler_->write_json(os);
  }
  if (!config_.profile.metrics_path.empty()) {
    std::ofstream os{config_.profile.metrics_path};
    profiler_->write_prometheus(os);
  }
  if (!config_.profile.chrome_path.empty()) {
    std::ofstream os{config_.profile.chrome_path};
    profiler_->write_chrome(os);
  }
}

void GridSystem::maybe_sample() {
  // Sampling piggybacks on event dispatch instead of arming its own timer:
  // in a discrete-event simulation state only changes at events, so the
  // snapshot taken at the first event past the due tick sees exactly what a
  // timer firing at the tick would have seen — and the sampler adds zero
  // events to the engine (it cannot perturb schedules or pay heap churn).
  if (ctx_.now() < next_sample_due_) return;
  ctx_.sampler().sample(ctx_.now());
  next_sample_due_ = ctx_.now() + config_.telemetry.sample_interval;
}

bool GridSystem::maybe_pause(double now) {
  // One-shot: at most one pause per run, at the first consistent boundary
  // with time >= pause_at_. Classic runs pass the next event's timestamp
  // BEFORE stepping it, so nothing at or past the boundary has executed
  // when the hook runs — a forked child's treatment swap then covers
  // exactly the sends a from-scratch run would gate on active_from.
  // Sharded runs pass T_min at a barrier (workers idle), so the hook
  // always sees a globally consistent grid.
  if (!pause_hook_ || pause_fired_ || now < pause_at_) return true;
  pause_fired_ = true;
  if (pause_hook_()) return true;
  abandoned_ = true;
  return false;
}

void GridSystem::maybe_sample_shard(std::size_t s) {
  // Sharded twin of maybe_sample(): each shard samples its own sampler on
  // its own clock from its own worker thread (shared state: none).
  sim::SimContext& c = shard_context(s);
  if (c.now() < shard_sample_due_[s]) return;
  c.sampler().sample(c.now());
  shard_sample_due_[s] = c.now() + config_.telemetry.sample_interval;
}

void GridSystem::replay_history() {
  // Barrier-time (workers idle): push the Central Server's newly journaled
  // contracts into every shard's replica. Replay goes through record() so a
  // replica's bounded deque evicts exactly like the live history's. The
  // applied prefix is compacted away — journal entries are addressed by
  // global index, so the cursor survives compaction and a long run's
  // journal memory stays bounded by one barrier interval's contracts.
  if (history_replicas_.empty()) return;
  market::PriceHistory& history = central_->mutable_price_history();
  const std::size_t end = history.journal_size();
  for (; history_applied_ < end; ++history_applied_) {
    const market::ContractRecord& rec = history.journal_at(history_applied_);
    for (auto& replica : history_replicas_) replica.record(rec);
  }
  history.compact_journal(history_applied_);
}

GridSystem::~GridSystem() = default;

GridReport GridSystem::run(std::vector<job::JobRequest> requests, double until) {
  job::VectorSource source(std::move(requests));
  return run(source, until);
}

GridReport GridSystem::run(job::WorkloadSource& source, double until) {
  merged_.reset();
  pause_fired_ = false;
  abandoned_ = false;
  // Route the shared stream across the per-user clients. Sharded runs use
  // manual refill: lanes must never pull the shared source from a worker
  // thread, so the coordinator extends them at every barrier instead.
  job::WorkloadDemux demux(source, clients_.size(),
                           /*manual_refill=*/router_ != nullptr);
  demux.prime();
  demux_ = &demux;
  for (std::size_t u = 0; u < clients_.size(); ++u) {
    // Serial pre-run arming: each client claims creation attribution and
    // schedules its first submission timer at now = 0, exactly as the old
    // preload did, so canonical event identity is source-independent.
    clients_[u]->run_source(demux.lane(u));
  }

  // Run until every submission has reached a terminal state. The engine's
  // queue never drains on its own: the Central Server's poll timer and the
  // daemons' monitor timers re-arm forever, exactly like the real system's
  // daemons.
  auto all_done = [&] {
    for (const auto& client : clients_) {
      if (!client->workload_drained() || !client->idle()) return false;
    }
    return true;
  };
#if FAUCETS_PROFILE
  if (profiler_ != nullptr) profiler_->begin_run();
#endif
  if (router_ == nullptr) {
#if FAUCETS_PROFILE
    if (profiler_ != nullptr) {
      // One execute span around the whole loop: an unsharded lane has no
      // drain/merge/barrier, so its wall clock is execute plus idle.
      const std::uint64_t t0 = obs::HostClock::ticks();
      while (!all_done()) {
        if (!maybe_pause(ctx_.engine().next_time())) break;
        if (!ctx_.engine().step(until)) break;
        maybe_sample();
      }
      if (!abandoned_) ctx_.engine().run(std::min(until, ctx_.now() + 1.0));
      profiler_->lane(0).add_execute(obs::HostClock::ticks() - t0);
      makespan_ = ctx_.now();
    } else
#endif
    {
      while (!all_done()) {
        if (!maybe_pause(ctx_.engine().next_time())) break;
        if (!ctx_.engine().step(until)) break;
        maybe_sample();
      }
      // Drain in-flight housekeeping for one simulated second: the daemons'
      // ContractSettled reports to the Central Server (price history,
      // billing, barter transfers) trail the completion notices clients
      // wait for.
      if (!abandoned_) ctx_.engine().run(std::min(until, ctx_.now() + 1.0));
      makespan_ = ctx_.now();
    }
  } else {
    run_sharded(until, all_done);
  }
#if FAUCETS_PROFILE
  if (profiler_ != nullptr) profiler_->end_run();
#endif
  for (auto& d : daemons_) d->cm().finish_metrics();
  if (config_.telemetry.sample_interval > 0.0) {
    // Close the series on the final state so a chart's last point reflects
    // the drained grid.
    if (router_ == nullptr) {
      ctx_.sampler().sample(ctx_.now());
      next_sample_due_ = ctx_.now() + config_.telemetry.sample_interval;
    } else {
      for (std::size_t s = 0; s < shard_count(); ++s) {
        shard_context(s).sampler().sample(makespan_);
        shard_sample_due_[s] = makespan_ + config_.telemetry.sample_interval;
      }
    }
  }
  // The span trees are final now: analyze once, publish the per-phase
  // histograms, and cache the analysis for report()/telemetry(). Sharded
  // runs analyze and publish into the deterministic merged views.
  if (router_ == nullptr) {
    analysis_ = obs::analyze_spans(ctx_.spans());
    obs::observe_phase_histograms(ctx_.metrics(), *analysis_);
  } else {
    MergedObs& m = ensure_merged();
    analysis_ = obs::analyze_spans(m.spans);
    obs::observe_phase_histograms(m.metrics, *analysis_);
  }
  if (profiler_ != nullptr) write_profile_artifacts();
  // A clean end of run rolls the WAL into a fresh snapshot: restart from
  // here replays zero operations. Abandoned runs skip it (the warm-fork
  // parent's state is mid-flight and must not overwrite the store).
  if (store_ != nullptr && !abandoned_) central_->snapshot_to_store();
  workload_high_water_ = demux.high_water();
  demux_ = nullptr;
  return report();
}

void GridSystem::run_sharded(double until, const std::function<bool()>& all_done) {
  // Conservative windowed execution (DESIGN.md §11): no cross-shard message
  // can arrive sooner than its send time + base_latency, so every shard may
  // execute everything strictly below T_min + lookahead, where T_min is the
  // global minimum of pending event and staged envelope times. Every send in
  // a window happens at >= T_min, so its envelope arrives at >= window_end:
  // a window never misses a message from its own present.
  const double lookahead = config_.network.base_latency;
  const std::size_t n = shard_count();
  staged_.clear();
  staged_.resize(n);
  consumed_.assign(n, 0);
  sweep::ThreadPool pool(n);
#if FAUCETS_PROFILE
  if (profiler_ != nullptr) pool.set_profiler(profiler_.get());
#endif

  auto barrier = [&] {
    for (std::size_t s = 0; s < n; ++s) {
#if FAUCETS_PROFILE
      if (profiler_ != nullptr) {
        const std::uint64_t d0 = obs::HostClock::ticks();
        router_->drain(s, staged_[s], consumed_[s]);
        profiler_->add_drain(s, obs::HostClock::ticks() - d0);
        continue;
      }
#endif
      router_->drain(s, staged_[s], consumed_[s]);
    }
    replay_history();
  };
  auto t_min = [&] {
    double m = sim::Engine::kForever;
    for (std::size_t s = 0; s < n; ++s) {
      m = std::min(m, shard_context(s).engine().next_time());
      if (consumed_[s] < staged_[s].size()) {
        m = std::min(m, staged_[s][consumed_[s]].arrival);
      }
    }
    return m;
  };
  // Run lookahead windows until nothing remains at or below `cap` (or, with
  // `stop_when_done`, until every submission reached a terminal state).
  // Everything between windows runs on this thread with the workers idle, so
  // cross-shard reads (all_done, t_min, the history journal) are unshared.
  auto windows = [&](double cap, bool stop_when_done) {
#if FAUCETS_PROFILE
    // Profiled twin of the loop below: the coordinator snapshots the clock
    // around the barrier (drain shares are subtracted inside `barrier`, the
    // remainder of the interval is per-lane merge) and after wait_idle (each
    // lane's gap between dispatch and its task marks is barrier-wait). All
    // hooks run between windows on this thread, with the workers idle.
    if (profiler_ != nullptr) {
      for (;;) {
        profiler_->barrier_begin();
        barrier();
        if (stop_when_done && all_done()) {
          profiler_->barrier_end();
          return true;
        }
        const double tmin = t_min();
        profiler_->barrier_end();
        if (tmin >= sim::Engine::kForever || tmin > cap) return false;
        if (!maybe_pause(tmin)) return false;
        profiler_->window_launch(tmin);
        const double window_end = tmin + lookahead;
        // Extend every client lane past this window before the workers
        // start: chains re-arm off their lane heads, so a lane that ends
        // inside the window would starve its client mid-window.
        if (demux_ != nullptr) demux_->refill(window_end);
        for (std::size_t s = 0; s < n; ++s) {
          obs::ProfilerLane* lane = &profiler_->lane(s);
          pool.submit([this, s, window_end, cap, lane] {
            lane->begin_window_task();
            run_shard_window(s, window_end, cap);
            lane->end_window_task();
          });
        }
        pool.wait_idle();
        profiler_->window_complete();
      }
    }
#endif
    for (;;) {
      barrier();
      if (stop_when_done && all_done()) return true;
      const double tmin = t_min();
      if (tmin >= sim::Engine::kForever || tmin > cap) return false;
      if (!maybe_pause(tmin)) return false;
      const double window_end = tmin + lookahead;
      // Same lane-coverage invariant as the profiled twin above.
      if (demux_ != nullptr) demux_->refill(window_end);
      for (std::size_t s = 0; s < n; ++s) {
        pool.submit([this, s, window_end, cap] {
          run_shard_window(s, window_end, cap);
        });
      }
      pool.wait_idle();
    }
  };

  // Phase A: the market runs until quiescent (or `until`).
  const bool done = windows(until, /*stop_when_done=*/true);
  if (abandoned_) return;  // pause hook bailed; the caller discards the run

  // Phase B: drain trailing housekeeping (ContractSettled reports, billing,
  // barter transfers) for one simulated second — the single-engine drain
  // bound, derived from the clients' last terminal outcome because no one
  // shard's clock is "the" clock. Phase A overshoots that moment by less
  // than one lookahead window, which stays inside this bound for any sane
  // base_latency (< 1s).
  double terminal = 0.0;
  if (done) {
    for (const auto& c : clients_) {
      terminal = std::max(terminal, c->last_terminal_time());
    }
  } else {
    for (std::size_t s = 0; s < n; ++s) {
      terminal = std::max(terminal, shard_context(s).now());
    }
  }
  const double drain_end = std::min(until, terminal + 1.0);
  windows(drain_end, /*stop_when_done=*/false);

  makespan_ = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    makespan_ = std::max(makespan_, shard_context(s).now());
  }
  // Mirror Engine::run's clamp: when events remain beyond a finite drain
  // bound (the daemons' monitor timers re-arm forever), the single-engine
  // clock comes to rest exactly at the bound.
  bool more = false;
  for (std::size_t s = 0; s < n; ++s) {
    if (shard_context(s).engine().next_time() < sim::Engine::kForever ||
        consumed_[s] < staged_[s].size()) {
      more = true;
    }
  }
  if (more && drain_end < sim::Engine::kForever) makespan_ = drain_end;
  // All shards come to rest on one clock, like the single global engine:
  // report-time accounting (utilization windows, final samples) reads now()
  // and must see the same end time regardless of which shard hosts it.
  for (std::size_t s = 0; s < n; ++s) {
    shard_context(s).engine().advance_to(makespan_);
  }
}

void GridSystem::run_shard_window(std::size_t s, double window_end, double cap) {
  // Merge the shard's own event heap with its staged cross-shard envelopes
  // in exactly the order one global heap would have produced: ascending
  // canonical order (time, scheduling rank, creator, creation seq). An
  // engine event's rank is the time it was scheduled (its send time, for
  // deliveries); an envelope carries its sender's values.
  sim::SimContext& ctx = shard_context(s);
  sim::Engine& engine = ctx.engine();
  auto& staged = staged_[s];
  std::size_t& pos = consumed_[s];
  for (;;) {
    const double et = engine.next_time();
    bool pick_env = false;
    double t = et;
    if (pos < staged.size()) {
      const auto& env = staged[pos];
      if (et != env.arrival) {
        pick_env = env.arrival < et;
      } else {
        const double er = engine.next_rank();
        if (er != env.sent_at) {
          pick_env = env.sent_at < er;
        } else {
          const std::uint64_t ec = engine.next_creator();
          pick_env = ec != env.creator ? env.creator < ec
                                       : env.cseq < engine.next_cseq();
        }
      }
      if (pick_env) t = env.arrival;
    }
    if (t >= window_end || t > cap) break;
    if (pick_env) {
      auto& env = staged[pos];
      engine.advance_to(env.arrival);
      engine.begin_external_event(env.sent_at, env.creator, env.cseq);
#if FAUCETS_PROFILE
      // Cross-shard deliveries bypass Engine::step, so they get their own
      // event bracket here (the network tags kind/class inside deliver).
      if (profiler_ != nullptr) {
        obs::ProfilerLane& lane = profiler_->lane(s);
        lane.begin_event();
        ctx.network().deliver_envelope(env.kind, std::move(env.msg));
        lane.end_event();
      } else {
        ctx.network().deliver_envelope(env.kind, std::move(env.msg));
      }
#else
      ctx.network().deliver_envelope(env.kind, std::move(env.msg));
#endif
      ++pos;
    } else {
      engine.step(cap);
    }
    maybe_sample_shard(s);
  }
}

const obs::SpanAnalysis& GridSystem::analysis() const {
  if (!analysis_) analysis_ = obs::analyze_spans(merged_spans());
  return *analysis_;
}

GridSystem::MergedObs& GridSystem::ensure_merged() const {
  if (!merged_) {
    std::vector<const obs::MetricsRegistry*> regs;
    std::vector<const obs::SpanTracker*> spans;
    std::vector<const obs::TraceBuffer*> traces;
    for (std::size_t s = 0; s < shard_count(); ++s) {
      const sim::SimContext& c = shard_context(s);
      regs.push_back(&c.metrics());
      spans.push_back(&c.spans());
      traces.push_back(&c.trace());
    }
    MergedObs m;
    m.metrics = obs::MetricsRegistry::merged(regs);
    m.spans = obs::SpanTracker::merge_journals(spans);
    m.trace = obs::TraceView::merged(traces);
    merged_ = std::move(m);
  }
  return *merged_;
}

const obs::MetricsRegistry& GridSystem::merged_metrics() const {
  return router_ != nullptr ? ensure_merged().metrics : ctx_.metrics();
}

const obs::SpanTracker& GridSystem::merged_spans() const {
  return router_ != nullptr ? ensure_merged().spans : ctx_.spans();
}

obs::TraceView GridSystem::merged_trace() const {
  if (router_ != nullptr) return ensure_merged().trace;
  return obs::TraceView::merged({&ctx_.trace()});
}

void GridSystem::schedule_cluster_shutdown(std::size_t i, double when,
                                           bool graceful) {
  FaucetsDaemon* daemon = daemons_.at(i).get();
  sim::Engine& eng = shard_context(daemon_shard_.at(i)).engine();
  eng.set_current_entity(daemon->id().value());
  eng.schedule_at(when, [daemon, graceful] {
    if (graceful) {
      daemon->drain_and_shutdown();
    } else {
      daemon->crash();
    }
  });
}

void GridSystem::schedule_cluster_restart(std::size_t i, double when) {
  FaucetsDaemon* daemon = daemons_.at(i).get();
  sim::Engine& eng = shard_context(daemon_shard_.at(i)).engine();
  eng.set_current_entity(daemon->id().value());
  eng.schedule_at(when, [daemon] { daemon->restart(); });
}

std::unique_ptr<GridSystem> GridBuilder::build() {
  if (clusters_.empty()) {
    throw std::invalid_argument("GridBuilder: at least one cluster is required");
  }
  if (users_ == 0) {
    throw std::invalid_argument("GridBuilder: at least one user is required");
  }
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    const ClusterSetup& setup = clusters_[i];
    const std::string where = "GridBuilder: cluster " + std::to_string(i);
    if (setup.machine.total_procs <= 0) {
      throw std::invalid_argument(where + " (" + setup.machine.name +
                                  ") has no processors");
    }
    if (!setup.strategy) {
      throw std::invalid_argument(where + " is missing a strategy factory");
    }
    if (!setup.bid_generator) {
      throw std::invalid_argument(where + " is missing a bid generator factory");
    }
  }
  for (const auto& c : config_.crashes) {
    if (c.cluster >= clusters_.size()) {
      throw std::invalid_argument("GridBuilder: crash schedule names cluster " +
                                  std::to_string(c.cluster) + " but only " +
                                  std::to_string(clusters_.size()) + " exist");
    }
  }
  for (const auto& p : config_.partitions) {
    if (p.cluster >= clusters_.size()) {
      throw std::invalid_argument("GridBuilder: partition names cluster " +
                                  std::to_string(p.cluster) + " but only " +
                                  std::to_string(clusters_.size()) + " exist");
    }
  }
  if (config_.shards >= 1 && config_.network.base_latency <= 0.0) {
    throw std::invalid_argument(
        "GridBuilder: sharded runs need base_latency > 0 (it is the "
        "conservative lookahead)");
  }
  return std::make_unique<GridSystem>(std::move(config_), std::move(clusters_),
                                      users_);
}

GridReport GridSystem::report() const {
  GridReport out;
  out.makespan = router_ != nullptr ? makespan_ : ctx_.now();
  // Traffic accumulates per shard network (sends counted by the sender's
  // fabric, deliveries by the receiver's) and merges as an exact sum.
  for (std::size_t s = 0; s < shard_count(); ++s) {
    const sim::Network& net = shard_context(s).network();
    out.messages += net.messages_sent();
    out.network_bytes += net.bytes_sent();
    for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
      out.messages_sent_by_kind[k] += net.sent_by_kind()[k];
      out.messages_delivered_by_kind[k] += net.delivered_by_kind()[k];
    }
  }

  // Grid-wide totals come straight from the metrics registry: every client
  // and daemon increments the shared instruments, so the report no longer
  // re-plumbs ad-hoc counters through each layer.
  const obs::MetricsRegistry& metrics = merged_metrics();
  out.jobs_submitted = metrics.counter_value("faucets_grid_jobs_submitted_total");
  out.jobs_completed = metrics.counter_value("faucets_grid_jobs_completed_total");
  out.jobs_unplaced = metrics.counter_value("faucets_grid_jobs_unplaced_total");
  out.migrations = metrics.counter_value("faucets_grid_migrations_total");
  out.watchdog_restarts =
      metrics.counter_value("faucets_grid_watchdog_restarts_total");

  for (const auto& d : daemons_) {
    ClusterReport c;
    c.name = d->cm().machine().name;
    c.id = d->cluster_id();
    c.utilization = d->cm().metrics().utilization();
    c.completed = d->cm().metrics().completed();
    c.rejected = d->cm().metrics().rejected();
    c.revenue = d->revenue();
    c.payoff_earned = d->cm().metrics().total_payoff();
    c.bids_issued = d->bids_issued();
    c.bids_declined = d->bids_declined();
    c.awards_confirmed = d->awards_confirmed();
    c.awards_refused = d->awards_refused();
    if (config_.central.billing == BillingMode::kBarter) {
      c.barter_balance =
          std::as_const(*central_).barter_ledger().balance(d->cluster_id());
    }
    out.clusters.push_back(std::move(c));
  }

  // Grid-wide accounting: the conservation invariant (§5.5.3). Transfers
  // are paired += / -= of one double value, so in barter mode the residual
  // is exactly 0.0 — CI asserts on it without an epsilon.
  const BarterLedger& ledger = std::as_const(*central_).barter_ledger();
  out.ledger.barter = config_.central.billing == BillingMode::kBarter;
  out.ledger.opening_credits = opening_credits_;
  out.ledger.total_credits = ledger.total_credits();
  out.ledger.conservation_residual = out.ledger.total_credits - opening_credits_;
  out.ledger.transfers = ledger.log().size();
  out.ledger.total_charged =
      std::as_const(*central_).user_accounts().total_charged();

  Samples latency;
  for (const auto& cl : clients_) {
    out.total_spent += cl->total_spent();
    out.total_client_payoff += cl->total_payoff();
    for (double v : cl->award_latency().values()) latency.add(v);
  }
  out.mean_award_latency = latency.mean();
  out.phase_mean_seconds = analysis().mean_phases();
  return out;
}

GridTelemetry GridSystem::telemetry() const {
  GridTelemetry out;
  out.analysis = analysis();
  out.users.resize(clients_.size());
  out.clusters.resize(daemons_.size());
  for (std::size_t c = 0; c < daemons_.size(); ++c) {
    out.clusters[c].scope = daemons_[c]->cm().machine().name;
  }
  // Join each client's submission outcomes (deadline terms captured at
  // submit) into per-user and per-cluster deadline accounting.
  for (std::size_t u = 0; u < clients_.size(); ++u) {
    out.users[u].scope = "user" + std::to_string(u);
    for (const SubmissionOutcome& o : clients_[u]->outcomes()) {
      const bool finished = o.status == SubmissionOutcome::Status::kCompleted;
      out.users[u].add(finished, o.finish_time, o.has_deadline, o.soft_deadline,
                       o.hard_deadline, o.payoff, o.payoff_max);
      if (o.cluster.valid() &&
          static_cast<std::size_t>(o.cluster.value()) < out.clusters.size()) {
        out.clusters[static_cast<std::size_t>(o.cluster.value())].add(
            finished, o.finish_time, o.has_deadline, o.soft_deadline,
            o.hard_deadline, o.payoff, o.payoff_max);
      }
    }
  }
  return out;
}

}  // namespace faucets::core
