#include "src/core/grid_system.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace faucets::core {

double GridReport::grid_utilization_weighted() const {
  // Weight by completed work share is unavailable here; weight by cluster
  // count-free utilization is misleading, so weight by nothing: callers get
  // the simple mean across clusters (clusters in one experiment share a
  // size unless stated otherwise).
  if (clusters.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& c : clusters) sum += c.utilization;
  return sum / static_cast<double>(clusters.size());
}

GridSystem::GridSystem(GridConfig config, std::vector<ClusterSetup> clusters,
                       std::size_t user_count)
    : config_(std::move(config)), ctx_(sim::SimConfig{.network = config_.network}) {
  if (clusters.empty()) throw std::invalid_argument("grid needs >= 1 cluster");
  if (user_count == 0) throw std::invalid_argument("grid needs >= 1 user");

  // The point budget must be in place before any entity registers a series.
  ctx_.sampler().set_default_capacity(config_.telemetry.series_capacity);

  central_ = std::make_unique<CentralServer>(ctx_, config_.central);
  appspector_ = std::make_unique<AppSpector>(ctx_);
  if (config_.brokered_submission) {
    BrokerConfig broker_config;
    broker_config.retry = config_.retry;
    broker_ = std::make_unique<BrokerAgent>(ctx_, central_->id(), broker_config);
  }

  // Stand up one daemon + cluster manager per Compute Server.
  DaemonConfig daemon_config = config_.daemon;
  daemon_config.retry = config_.retry;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    ClusterSetup& setup = clusters[i];
    const ClusterId cluster_id{i};
    auto cm = std::make_unique<cluster::ClusterManager>(
        ctx_, setup.machine, setup.strategy(), setup.costs, cluster_id);
    auto daemon = std::make_unique<FaucetsDaemon>(
        ctx_, cluster_id, std::move(cm), setup.bid_generator(),
        central_->id(), appspector_->id(), daemon_config);
    daemon->set_grid_history(&central_->price_history());
    daemon->register_with_central();
    if (config_.central.billing == BillingMode::kBarter) {
      central_->open_barter_account(cluster_id, setup.barter_credits);
    }
    daemons_.push_back(std::move(daemon));
  }

  // Fault plan: cluster-indexed partitions resolve to daemon entities now
  // that the daemons exist; crashes (and restarts) become scheduled events.
  sim::FaultConfig faults = config_.faults;
  for (const auto& p : config_.partitions) {
    faults.partitions.push_back(
        {daemons_.at(p.cluster)->id(), p.from, p.until});
  }
  const bool chaos = faults.any() || !config_.crashes.empty();
  ctx_.network().set_faults(std::move(faults));
  for (const auto& c : config_.crashes) {
    schedule_cluster_shutdown(c.cluster, c.at, c.graceful);
    if (c.restart_at) schedule_cluster_restart(c.cluster, *c.restart_at);
  }

  // One client per user, each with an account at the Central Server. Users
  // get round-robin home clusters.
  for (std::size_t u = 0; u < user_count; ++u) {
    const std::string username = "user" + std::to_string(u);
    const std::string password = "pw-" + std::to_string(u * 7919 + 13);
    const ClusterId home{u % daemons_.size()};
    const auto uid = central_->register_user(username, password, home);
    if (!uid) throw std::logic_error("duplicate user " + username);
    central_->user_accounts().deposit(*uid, config_.user_initial_funds);

    ClientConfig cc;
    cc.username = username;
    cc.password = password;
    cc.watchdog_margin = config_.client_watchdog_margin;
    cc.retry = config_.retry;
    // Under chaos a lost bid round must not strand the job: give clients a
    // full backoff schedule of fresh RFB rounds. Fault-free grids keep the
    // paper's one-shot market.
    cc.bid_rounds = chaos ? config_.retry.max_attempts : 1;
    if (config_.clients_prefer_home) cc.home_cluster = home;
    if (broker_) {
      cc.broker = broker_->id();
      cc.criteria = config_.broker_criteria;
    }
    auto evaluator = config_.evaluator
                         ? config_.evaluator()
                         : std::make_unique<market::LeastCostEvaluator>();
    clients_.push_back(std::make_unique<FaucetsClient>(
        ctx_, central_->id(), std::move(evaluator), std::move(cc)));
  }

  if (config_.telemetry.sample_interval > 0.0) {
    next_sample_due_ = config_.telemetry.sample_interval;
  }
}

void GridSystem::maybe_sample() {
  // Sampling piggybacks on event dispatch instead of arming its own timer:
  // in a discrete-event simulation state only changes at events, so the
  // snapshot taken at the first event past the due tick sees exactly what a
  // timer firing at the tick would have seen — and the sampler adds zero
  // events to the engine (it cannot perturb schedules or pay heap churn).
  if (ctx_.now() < next_sample_due_) return;
  ctx_.sampler().sample(ctx_.now());
  next_sample_due_ = ctx_.now() + config_.telemetry.sample_interval;
}

GridSystem::~GridSystem() = default;

GridReport GridSystem::run(std::vector<job::JobRequest> requests, double until) {
  // Split the stream per user and hand each client its share.
  std::vector<std::vector<job::JobRequest>> per_user(clients_.size());
  for (auto& req : requests) {
    per_user[req.user_index % clients_.size()].push_back(std::move(req));
  }
  std::vector<std::size_t> expected(clients_.size());
  for (std::size_t u = 0; u < clients_.size(); ++u) {
    expected[u] = clients_[u]->submissions() + per_user[u].size();
    clients_[u]->run_workload(std::move(per_user[u]));
  }

  // Run until every submission has reached a terminal state. The engine's
  // queue never drains on its own: the Central Server's poll timer and the
  // daemons' monitor timers re-arm forever, exactly like the real system's
  // daemons.
  auto all_done = [&] {
    for (std::size_t u = 0; u < clients_.size(); ++u) {
      if (clients_[u]->submissions() < expected[u] || !clients_[u]->idle()) {
        return false;
      }
    }
    return true;
  };
  while (!all_done() && ctx_.engine().step(until)) {
    maybe_sample();
  }
  // Drain in-flight housekeeping for one simulated second: the daemons'
  // ContractSettled reports to the Central Server (price history, billing,
  // barter transfers) trail the completion notices clients wait for.
  ctx_.engine().run(std::min(until, ctx_.now() + 1.0));
  for (auto& d : daemons_) d->cm().finish_metrics();
  if (config_.telemetry.sample_interval > 0.0) {
    // Close the series on the final state so a chart's last point reflects
    // the drained grid.
    ctx_.sampler().sample(ctx_.now());
    next_sample_due_ = ctx_.now() + config_.telemetry.sample_interval;
  }
  // The span trees are final now: analyze once, publish the per-phase
  // histograms, and cache the analysis for report()/telemetry().
  analysis_ = obs::analyze_spans(ctx_.spans());
  obs::observe_phase_histograms(ctx_.metrics(), *analysis_);
  return report();
}

const obs::SpanAnalysis& GridSystem::analysis() const {
  if (!analysis_) analysis_ = obs::analyze_spans(ctx_.spans());
  return *analysis_;
}

void GridSystem::schedule_cluster_shutdown(std::size_t i, double when,
                                           bool graceful) {
  FaucetsDaemon* daemon = daemons_.at(i).get();
  ctx_.engine().schedule_at(when, [daemon, graceful] {
    if (graceful) {
      daemon->drain_and_shutdown();
    } else {
      daemon->crash();
    }
  });
}

void GridSystem::schedule_cluster_restart(std::size_t i, double when) {
  FaucetsDaemon* daemon = daemons_.at(i).get();
  ctx_.engine().schedule_at(when, [daemon] { daemon->restart(); });
}

std::unique_ptr<GridSystem> GridBuilder::build() {
  if (clusters_.empty()) {
    throw std::invalid_argument("GridBuilder: at least one cluster is required");
  }
  if (users_ == 0) {
    throw std::invalid_argument("GridBuilder: at least one user is required");
  }
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    const ClusterSetup& setup = clusters_[i];
    const std::string where = "GridBuilder: cluster " + std::to_string(i);
    if (setup.machine.total_procs <= 0) {
      throw std::invalid_argument(where + " (" + setup.machine.name +
                                  ") has no processors");
    }
    if (!setup.strategy) {
      throw std::invalid_argument(where + " is missing a strategy factory");
    }
    if (!setup.bid_generator) {
      throw std::invalid_argument(where + " is missing a bid generator factory");
    }
  }
  for (const auto& c : config_.crashes) {
    if (c.cluster >= clusters_.size()) {
      throw std::invalid_argument("GridBuilder: crash schedule names cluster " +
                                  std::to_string(c.cluster) + " but only " +
                                  std::to_string(clusters_.size()) + " exist");
    }
  }
  for (const auto& p : config_.partitions) {
    if (p.cluster >= clusters_.size()) {
      throw std::invalid_argument("GridBuilder: partition names cluster " +
                                  std::to_string(p.cluster) + " but only " +
                                  std::to_string(clusters_.size()) + " exist");
    }
  }
  return std::make_unique<GridSystem>(std::move(config_), std::move(clusters_),
                                      users_);
}

GridReport GridSystem::report() const {
  GridReport out;
  out.makespan = ctx_.now();
  out.messages = ctx_.network().messages_sent();
  out.network_bytes = ctx_.network().bytes_sent();
  out.messages_sent_by_kind = ctx_.network().sent_by_kind();
  out.messages_delivered_by_kind = ctx_.network().delivered_by_kind();

  // Grid-wide totals come straight from the metrics registry: every client
  // and daemon increments the shared instruments, so the report no longer
  // re-plumbs ad-hoc counters through each layer.
  const obs::MetricsRegistry& metrics = ctx_.metrics();
  out.jobs_submitted = metrics.counter_value("faucets_grid_jobs_submitted_total");
  out.jobs_completed = metrics.counter_value("faucets_grid_jobs_completed_total");
  out.jobs_unplaced = metrics.counter_value("faucets_grid_jobs_unplaced_total");
  out.migrations = metrics.counter_value("faucets_grid_migrations_total");
  out.watchdog_restarts =
      metrics.counter_value("faucets_grid_watchdog_restarts_total");

  for (const auto& d : daemons_) {
    ClusterReport c;
    c.name = d->cm().machine().name;
    c.id = d->cluster_id();
    c.utilization = d->cm().metrics().utilization();
    c.completed = d->cm().metrics().completed();
    c.rejected = d->cm().metrics().rejected();
    c.revenue = d->revenue();
    c.payoff_earned = d->cm().metrics().total_payoff();
    c.bids_issued = d->bids_issued();
    c.bids_declined = d->bids_declined();
    c.awards_confirmed = d->awards_confirmed();
    c.awards_refused = d->awards_refused();
    if (config_.central.billing == BillingMode::kBarter) {
      c.barter_balance =
          std::as_const(*central_).barter_ledger().balance(d->cluster_id());
    }
    out.clusters.push_back(std::move(c));
  }

  Samples latency;
  for (const auto& cl : clients_) {
    out.total_spent += cl->total_spent();
    out.total_client_payoff += cl->total_payoff();
    for (double v : cl->award_latency().values()) latency.add(v);
  }
  out.mean_award_latency = latency.mean();
  out.phase_mean_seconds = analysis().mean_phases();
  return out;
}

GridTelemetry GridSystem::telemetry() const {
  GridTelemetry out;
  out.analysis = analysis();
  out.users.resize(clients_.size());
  out.clusters.resize(daemons_.size());
  for (std::size_t c = 0; c < daemons_.size(); ++c) {
    out.clusters[c].scope = daemons_[c]->cm().machine().name;
  }
  // Join each client's submission outcomes (deadline terms captured at
  // submit) into per-user and per-cluster deadline accounting.
  for (std::size_t u = 0; u < clients_.size(); ++u) {
    out.users[u].scope = "user" + std::to_string(u);
    for (const SubmissionOutcome& o : clients_[u]->outcomes()) {
      const bool finished = o.status == SubmissionOutcome::Status::kCompleted;
      out.users[u].add(finished, o.finish_time, o.has_deadline, o.soft_deadline,
                       o.hard_deadline, o.payoff, o.payoff_max);
      if (o.cluster.valid() &&
          static_cast<std::size_t>(o.cluster.value()) < out.clusters.size()) {
        out.clusters[static_cast<std::size_t>(o.cluster.value())].add(
            finished, o.finish_time, o.has_deadline, o.soft_deadline,
            o.hard_deadline, o.payoff, o.payoff_max);
      }
    }
  }
  return out;
}

}  // namespace faucets::core
