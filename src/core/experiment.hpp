// Experiment helpers shared by the benchmark harnesses: single-cluster
// scheduler runs (E1-E4, no market) and common factories.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/server.hpp"
#include "src/job/source.hpp"
#include "src/job/workload.hpp"
#include "src/sched/scheduler.hpp"

namespace faucets::core {

/// Result of driving one workload through one Cluster Manager directly
/// (no market): the scheduler-comparison experiments.
struct ClusterRunResult {
  double utilization = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double mean_response = 0.0;
  double p95_response = 0.0;
  double mean_bounded_slowdown = 0.0;
  double total_payoff = 0.0;
  std::uint64_t deadline_misses = 0;
  double makespan = 0.0;
  double work_completed = 0.0;
  double reconfigs_per_job = 0.0;
};

/// Stream `source` into a fresh ClusterManager running `strategy` on
/// `machine` — one submission timer re-armed per pull, so memory stays
/// bounded by the source's read-ahead — run to quiescence, and report.
/// Rejected jobs simply vanish (single-cluster world: nowhere else to go).
/// Every call builds a private SimContext and touches nothing global, so
/// concurrent calls from sweep workers are safe.
[[nodiscard]] ClusterRunResult run_cluster_experiment(
    const cluster::MachineSpec& machine,
    const std::function<std::unique_ptr<sched::Strategy>()>& strategy,
    job::WorkloadSource& source, job::AdaptiveCosts costs = {});

/// Preload compatibility overload: `requests` is shared read-only across
/// concurrent sweep workers (each call copies into its own VectorSource).
[[nodiscard]] ClusterRunResult run_cluster_experiment(
    const cluster::MachineSpec& machine,
    const std::function<std::unique_ptr<sched::Strategy>()>& strategy,
    const std::vector<job::JobRequest>& requests, job::AdaptiveCosts costs = {});

}  // namespace faucets::core
