// Pluggable state stores (DESIGN.md §14) — the persistence seam behind the
// Central Server's accounting state, modeled on SLURM's accounting_storage
// plugin family: the domain layer journals logical operations through one
// narrow interface and never sees the storage medium.
//
// Two backends:
//   MemStore     — in-memory vectors; the "none" plugin for tests and for
//                  grids that do not want durability.
//   DurableStore — a directory holding generation-numbered full snapshots
//                  plus an append-only WAL of operations since the last
//                  snapshot. snapshot() is atomic (tmp + rename) and
//                  truncates the log; recover() returns the latest valid
//                  snapshot image and every intact WAL record after it.
//
// The store is intentionally ignorant of what the bytes mean: encoding and
// replay live with the domain objects (BarterLedger &c., see
// src/faucets/central_store.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/store/wal.hpp"

namespace faucets::store {

class StateStore {
 public:
  virtual ~StateStore() = default;

  /// Journal one logical operation. Ordered; durable per the backend's
  /// sync policy.
  virtual void append(std::uint16_t type, std::string_view payload) = 0;

  /// Make every append so far durable.
  virtual void flush() = 0;

  /// Atomically replace the persisted state with `image` (a full encoding
  /// of current domain state) and truncate the operation log. Must be
  /// called once before the first append of a session: it opens the
  /// session's log generation.
  virtual void snapshot(std::string_view image) = 0;

  struct Recovered {
    std::string snapshot;        // latest durable image ("" = empty state)
    std::vector<WalRecord> ops;  // intact operations after that snapshot
    bool torn = false;           // a torn/corrupt WAL tail was discarded
    std::uint64_t generation = 0;
  };
  /// Read back the durable state without disturbing it.
  [[nodiscard]] virtual Recovered recover() const = 0;

  [[nodiscard]] virtual std::uint64_t appends_since_snapshot() const noexcept = 0;
};

/// In-memory backend: snapshots and operations live in this process only.
class MemStore final : public StateStore {
 public:
  void append(std::uint16_t type, std::string_view payload) override;
  void flush() override {}
  void snapshot(std::string_view image) override;
  [[nodiscard]] Recovered recover() const override;
  [[nodiscard]] std::uint64_t appends_since_snapshot() const noexcept override {
    return ops_.size();
  }

 private:
  std::string image_;
  std::vector<WalRecord> ops_;
  std::uint64_t generation_ = 0;
};

struct DurableOptions {
  SyncPolicy sync = SyncPolicy::kBatch;
  std::size_t sync_every = 64;  // group-commit batch size (kBatch only)
};

/// Directory-backed store: `snapshot-<gen>` + `wal-<gen>` pairs, highest
/// valid generation wins at recovery. Not thread-safe (the Central Server
/// lives on one shard).
class DurableStore final : public StateStore {
 public:
  /// Opens (and creates if needed) `dir`, locating the latest generation.
  /// Throws std::runtime_error when the directory cannot be created.
  explicit DurableStore(std::string dir, DurableOptions options = {});
  ~DurableStore() override;

  void append(std::uint16_t type, std::string_view payload) override;
  void flush() override;
  void snapshot(std::string_view image) override;
  [[nodiscard]] Recovered recover() const override;
  [[nodiscard]] std::uint64_t appends_since_snapshot() const noexcept override {
    return appends_;
  }

  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  /// WAL framing/sync counters for BENCH_store.
  [[nodiscard]] std::uint64_t wal_bytes() const noexcept { return wal_.bytes_framed(); }
  [[nodiscard]] std::uint64_t wal_syncs() const noexcept { return wal_.syncs(); }

  [[nodiscard]] std::string snapshot_path(std::uint64_t gen) const;
  [[nodiscard]] std::string wal_path(std::uint64_t gen) const;

 private:
  [[nodiscard]] std::uint64_t scan_latest_generation() const;

  std::string dir_;
  DurableOptions options_;
  std::uint64_t generation_ = 0;  // 0 = no snapshot yet; writing is gen >= 1
  std::uint64_t appends_ = 0;
  WalWriter wal_;
};

/// Read and validate one snapshot file. Returns false (and clears `image`)
/// when the file is missing, torn, or fails its CRC.
[[nodiscard]] bool read_snapshot_file(const std::string& path, std::string& image);

}  // namespace faucets::store
