#include "src/store/store.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/store/codec.hpp"

namespace faucets::store {

namespace {

constexpr char kSnapMagic[8] = {'F', 'A', 'U', 'C', 'S', 'N', 'P', '\x01'};

void fsync_path(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(), directory ? O_RDONLY | O_DIRECTORY : O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

// --- MemStore ---------------------------------------------------------------

void MemStore::append(std::uint16_t type, std::string_view payload) {
  ops_.push_back(WalRecord{type, std::string(payload)});
}

void MemStore::snapshot(std::string_view image) {
  image_.assign(image);
  ops_.clear();
  ++generation_;
}

StateStore::Recovered MemStore::recover() const {
  Recovered out;
  out.snapshot = image_;
  out.ops = ops_;
  out.generation = generation_;
  return out;
}

// --- DurableStore -----------------------------------------------------------

bool read_snapshot_file(const std::string& path, std::string& image) {
  image.clear();
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string data = raw.str();
  // magic + u32 length + u32 crc + image bytes
  if (data.size() < sizeof kSnapMagic + 8) return false;
  if (std::memcmp(data.data(), kSnapMagic, sizeof kSnapMagic) != 0) return false;
  Decoder header{std::string_view(data).substr(sizeof kSnapMagic, 8)};
  const std::uint32_t length = header.get_u32();
  const std::uint32_t crc = header.get_u32();
  const std::string_view body =
      std::string_view(data).substr(sizeof kSnapMagic + 8);
  if (body.size() != length) return false;
  if (crc32(body) != crc) return false;
  image.assign(body);
  return true;
}

DurableStore::DurableStore(std::string dir, DurableOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("store: cannot create directory " + dir_ + ": " +
                             std::strerror(errno));
  }
  generation_ = scan_latest_generation();
}

DurableStore::~DurableStore() = default;

std::string DurableStore::snapshot_path(std::uint64_t gen) const {
  return dir_ + "/snapshot-" + std::to_string(gen);
}

std::string DurableStore::wal_path(std::uint64_t gen) const {
  return dir_ + "/wal-" + std::to_string(gen);
}

std::uint64_t DurableStore::scan_latest_generation() const {
  // snapshot() retires the predecessor pair, so the generations on disk are
  // sparse — usually a single survivor, plus leftovers from a crash
  // mid-publish. List the directory for snapshot-<g> names; validation
  // happens at recover() time.
  std::uint64_t latest = 0;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return 0;
  while (const dirent* e = ::readdir(d)) {
    const char* name = e->d_name;
    if (std::strncmp(name, "snapshot-", 9) != 0) continue;
    char* end = nullptr;
    const unsigned long long g = std::strtoull(name + 9, &end, 10);
    if (end == name + 9 || *end != '\0') continue;  // skips snapshot-N.tmp
    if (g > latest) latest = g;
  }
  ::closedir(d);
  return latest;
}

void DurableStore::append(std::uint16_t type, std::string_view payload) {
  if (!wal_.is_open()) {
    throw std::runtime_error(
        "store: append before snapshot() — a session must open its "
        "generation with snapshot() first");
  }
  wal_.append(type, payload);
  ++appends_;
}

void DurableStore::flush() {
  if (wal_.is_open()) wal_.flush();
}

void DurableStore::snapshot(std::string_view image) {
  const std::uint64_t next = generation_ + 1;
  const std::string path = snapshot_path(next);
  const std::string tmp = path + ".tmp";
  {
    Encoder header;
    header.put_u32(static_cast<std::uint32_t>(image.size()));
    header.put_u32(crc32(image));
    const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      throw std::runtime_error("store: cannot write " + tmp + ": " +
                               std::strerror(errno));
    }
    std::string blob{kSnapMagic, sizeof kSnapMagic};
    blob += header.bytes();
    blob.append(image.data(), image.size());
    const char* p = blob.data();
    std::size_t left = blob.size();
    while (left > 0) {
      const ssize_t n = ::write(fd, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        throw std::runtime_error("store: write failed on " + tmp + ": " +
                                 std::strerror(errno));
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    ::fsync(fd);
    ::close(fd);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("store: cannot publish snapshot " + path + ": " +
                             std::strerror(errno));
  }
  fsync_path(dir_, /*directory=*/true);

  // The snapshot is durable: open the new generation's log, then retire the
  // old pair. A crash between these steps leaves extra files recover()
  // simply ignores.
  wal_.open(wal_path(next), options_.sync, options_.sync_every);
  if (generation_ > 0) {
    (void)std::remove(snapshot_path(generation_).c_str());
    (void)std::remove(wal_path(generation_).c_str());
  }
  generation_ = next;
  appends_ = 0;
}

StateStore::Recovered DurableStore::recover() const {
  Recovered out;
  // Highest generation whose snapshot validates wins; a corrupt top
  // generation (crash mid-publish) falls back to its predecessor.
  for (std::uint64_t g = scan_latest_generation(); g >= 1; --g) {
    if (!read_snapshot_file(snapshot_path(g), out.snapshot)) continue;
    out.generation = g;
    WalReadResult wal = read_wal(wal_path(g));
    out.ops = std::move(wal.records);
    out.torn = wal.torn;
    return out;
  }
  return out;  // empty state: fresh directory
}

}  // namespace faucets::store
