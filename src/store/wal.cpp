#include "src/store/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/store/codec.hpp"

namespace faucets::store {

namespace {

constexpr char kMagic[8] = {'F', 'A', 'U', 'C', 'W', 'A', 'L', '\x01'};
constexpr std::size_t kFrameHeader = 8;  // u32 length + u32 crc

std::uint32_t read_le32(const char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

std::string_view wal_magic() noexcept { return {kMagic, sizeof kMagic}; }

std::string frame_record(std::uint16_t type, std::string_view payload) {
  Encoder body;
  body.put_u16(type);
  std::string framed_body = body.take();
  framed_body.append(payload.data(), payload.size());

  Encoder frame;
  frame.put_u32(static_cast<std::uint32_t>(framed_body.size()));
  frame.put_u32(crc32(framed_body));
  std::string out = frame.take();
  out += framed_body;
  return out;
}

WalWriter::~WalWriter() { close(); }

void WalWriter::open(const std::string& path, SyncPolicy policy,
                     std::size_t sync_every) {
  close();
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("wal: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  policy_ = policy;
  sync_every_ = sync_every == 0 ? 1 : sync_every;
  unsynced_ = 0;
  records_ = 0;
  bytes_ = 0;
  syncs_ = 0;
  buffer_.assign(kMagic, sizeof kMagic);
  write_out(policy_ == SyncPolicy::kAlways);
}

void WalWriter::close() {
  if (fd_ < 0) return;
  flush();
  ::close(fd_);
  fd_ = -1;
}

void WalWriter::append(std::uint16_t type, std::string_view payload) {
  if (fd_ < 0) throw std::runtime_error("wal: append on closed writer");
  const std::string frame = frame_record(type, payload);
  buffer_ += frame;
  bytes_ += frame.size();
  ++records_;
  ++unsynced_;
  switch (policy_) {
    case SyncPolicy::kNone:
      // Bound memory without durability promises: push large buffers out.
      if (buffer_.size() >= 1 << 16) write_out(false);
      break;
    case SyncPolicy::kBatch:
      if (unsynced_ >= sync_every_) write_out(true);
      break;
    case SyncPolicy::kAlways:
      write_out(true);
      break;
  }
}

void WalWriter::flush() {
  if (fd_ < 0) return;
  write_out(policy_ != SyncPolicy::kNone);
}

void WalWriter::write_out(bool sync) {
  if (!buffer_.empty()) {
    const char* p = buffer_.data();
    std::size_t left = buffer_.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("wal: write failed: ") +
                                 std::strerror(errno));
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    buffer_.clear();
  }
  if (sync && unsynced_ > 0) {
    ::fsync(fd_);
    ++syncs_;
    unsynced_ = 0;
  }
}

WalReadResult read_wal(const std::string& path) {
  WalReadResult out;
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    out.error = "missing";
    return out;
  }
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string data = raw.str();

  if (data.size() < sizeof kMagic ||
      std::memcmp(data.data(), kMagic, sizeof kMagic) != 0) {
    out.error = "bad magic";
    out.torn = !data.empty();
    return out;
  }

  std::size_t pos = sizeof kMagic;
  out.valid_bytes = pos;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeader) {
      out.torn = true;  // partial frame header
      break;
    }
    const std::uint32_t length = read_le32(data.data() + pos);
    const std::uint32_t crc = read_le32(data.data() + pos + 4);
    if (length < 2 || data.size() - pos - kFrameHeader < length) {
      out.torn = true;  // impossible length or body runs past EOF
      break;
    }
    const std::string_view body{data.data() + pos + kFrameHeader, length};
    if (crc32(body) != crc) {
      out.torn = true;  // corrupt body (or a torn tail overwritten later)
      break;
    }
    WalRecord rec;
    rec.type = static_cast<std::uint16_t>(
        static_cast<unsigned char>(body[0]) |
        (static_cast<unsigned char>(body[1]) << 8));
    rec.payload.assign(body.substr(2));
    out.records.push_back(std::move(rec));
    pos += kFrameHeader + length;
    out.valid_bytes = pos;
  }
  return out;
}

}  // namespace faucets::store
