#include "src/store/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/store/codec.hpp"

namespace faucets::store {

namespace {
constexpr char kCkptMagic[8] = {'F', 'A', 'U', 'C', 'C', 'K', 'P', '\x01'};
}  // namespace

std::string Checkpoint::encode() const {
  Encoder e;
  e.put_u32(kVersion);
  e.put_string(scenario_text);
  e.put_u32(static_cast<std::uint32_t>(overrides.size()));
  for (const auto& [flag, value] : overrides) {
    e.put_string(flag);
    e.put_string(value);
  }
  e.put_f64(sim_time);
  e.put_u64(shards);
  e.put_u32(static_cast<std::uint32_t>(executed.size()));
  for (const std::uint64_t n : executed) e.put_u64(n);
  e.put_string(state_image);
  return e.take();
}

Checkpoint Checkpoint::decode(const std::string& body) {
  Decoder d{body};
  Checkpoint out;
  const std::uint32_t version = d.get_u32();
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: version " + std::to_string(version) +
                             " is not supported (expected " +
                             std::to_string(kVersion) + ")");
  }
  out.scenario_text = d.get_string();
  const std::uint32_t n_overrides = d.get_u32();
  for (std::uint32_t i = 0; i < n_overrides; ++i) {
    std::string flag = d.get_string();
    std::string value = d.get_string();
    out.overrides.emplace_back(std::move(flag), std::move(value));
  }
  out.sim_time = d.get_f64();
  out.shards = d.get_u64();
  const std::uint32_t n_shards = d.get_u32();
  for (std::uint32_t i = 0; i < n_shards; ++i) out.executed.push_back(d.get_u64());
  out.state_image = d.get_string();
  return out;
}

void Checkpoint::write_file(const std::string& path) const {
  const std::string body = encode();
  Encoder header;
  header.put_u32(static_cast<std::uint32_t>(body.size()));
  header.put_u32(crc32(body));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) throw std::runtime_error("checkpoint: cannot write " + tmp);
    out.write(kCkptMagic, sizeof kCkptMagic);
    out.write(header.bytes().data(),
              static_cast<std::streamsize>(header.bytes().size()));
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    if (!out) throw std::runtime_error("checkpoint: write failed on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("checkpoint: cannot publish " + path);
  }
}

Checkpoint Checkpoint::read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string data = raw.str();
  if (data.size() < sizeof kCkptMagic + 8 ||
      std::memcmp(data.data(), kCkptMagic, sizeof kCkptMagic) != 0) {
    throw std::runtime_error("checkpoint: " + path + " is not a checkpoint file");
  }
  Decoder header{std::string_view(data).substr(sizeof kCkptMagic, 8)};
  const std::uint32_t length = header.get_u32();
  const std::uint32_t crc = header.get_u32();
  const std::string body(std::string_view(data).substr(sizeof kCkptMagic + 8));
  if (body.size() != length || crc32(body) != crc) {
    throw std::runtime_error("checkpoint: " + path + " is torn or corrupt");
  }
  try {
    return decode(body);
  } catch (const CodecError& e) {
    throw std::runtime_error("checkpoint: " + path + " is malformed: " + e.what());
  }
}

}  // namespace faucets::store
