// Binary encoding for the durable state store (DESIGN.md §14).
//
// Little-endian, length-prefixed, schema-free: every record and snapshot in
// the store is a flat byte string produced by an Encoder and consumed by a
// Decoder. The format is deliberately dumb — fixed-width integers, IEEE
// doubles by bit pattern, u32-length-prefixed strings — so that a byte
// string compares equal iff the encoded state is identical, which is what
// checkpoint verification relies on. CRC32 (the zlib polynomial) frames
// records on disk.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace faucets::store {

/// CRC-32 (reflected polynomial 0xEDB88320, as in zlib/PNG) over `data`.
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

/// Thrown by Decoder on truncated or malformed input. Recovery paths catch
/// it to mean "this record is torn — stop replaying here".
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only byte-string builder. All integers little-endian.
class Encoder {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void put_u16(std::uint16_t v) { put_fixed(v, 2); }
  void put_u32(std::uint32_t v) { put_fixed(v, 4); }
  void put_u64(std::uint64_t v) { put_fixed(v, 8); }
  void put_f64(double v);
  /// u32 length prefix + raw bytes.
  void put_string(std::string_view s);

  [[nodiscard]] const std::string& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::string take() noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  void put_fixed(std::uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  std::string buf_;
};

/// Sequential reader over one encoded byte string. Throws CodecError on
/// underflow; remaining() == 0 after a complete decode.
class Decoder {
 public:
  explicit Decoder(std::string_view data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t get_u8() { return static_cast<std::uint8_t>(get_fixed(1)); }
  [[nodiscard]] std::uint16_t get_u16() { return static_cast<std::uint16_t>(get_fixed(2)); }
  [[nodiscard]] std::uint32_t get_u32() { return static_cast<std::uint32_t>(get_fixed(4)); }
  [[nodiscard]] std::uint64_t get_u64() { return get_fixed(8); }
  [[nodiscard]] double get_f64();
  [[nodiscard]] std::string get_string();

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  [[nodiscard]] std::uint64_t get_fixed(int width);

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace faucets::store
