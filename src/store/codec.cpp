#include "src/store/codec.hpp"

#include <array>
#include <bit>

namespace faucets::store {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  std::uint32_t c = 0xFFFFFFFFu;
  for (char ch : data) {
    c = kCrcTable[(c ^ static_cast<unsigned char>(ch)) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void Encoder::put_f64(double v) { put_fixed(std::bit_cast<std::uint64_t>(v), 8); }

void Encoder::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

std::uint64_t Decoder::get_fixed(int width) {
  if (remaining() < static_cast<std::size_t>(width)) {
    throw CodecError("decode underflow: need " + std::to_string(width) +
                     " bytes, have " + std::to_string(remaining()));
  }
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos_ += static_cast<std::size_t>(width);
  return v;
}

double Decoder::get_f64() { return std::bit_cast<double>(get_fixed(8)); }

std::string Decoder::get_string() {
  const std::uint32_t n = get_u32();
  if (remaining() < n) {
    throw CodecError("decode underflow: string of " + std::to_string(n) +
                     " bytes, have " + std::to_string(remaining()));
  }
  std::string out(data_.substr(pos_, n));
  pos_ += n;
  return out;
}

}  // namespace faucets::store
