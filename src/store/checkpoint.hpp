// Whole-simulation checkpoint files (DESIGN.md §14).
//
// A simulation's event queue holds closures, which cannot be serialized —
// so a Faucets checkpoint is *replay-verified*: it pins everything needed
// to reproduce the run deterministically (the scenario text, the effective
// CLI overrides, the shard count) plus a fingerprint of the simulation's
// durable state at the checkpoint instant (the encoded Central Server
// state, per-shard executed-event counts). `--restore` re-runs the
// scenario from t = 0 and *proves* it passed through the checkpointed
// state byte-for-byte at time T before letting the run continue — restored
// artifacts are then byte-identical to an uninterrupted run by determinism,
// not by hope.
//
// File format (version 1): 8-byte magic "FAUCCKP\x01", then u32 length +
// u32 CRC-32 framing one encoded body:
//
//   u32 version | string scenario_text | u32 n_overrides | n x (string flag,
//   string value) | f64 sim_time | u64 shards | u32 n_shards | n x u64
//   executed | string state_image
//
// Version policy: readers reject a different major version outright (a
// checkpoint is a precise replay contract, not a migratable database); new
// fields mean a new version byte and a new magic-tail.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace faucets::store {

struct Checkpoint {
  static constexpr std::uint32_t kVersion = 1;

  std::string scenario_text;  // the full INI the run was parsed from
  /// Simulation-affecting CLI overrides, re-applied verbatim on restore.
  std::vector<std::pair<std::string, std::string>> overrides;
  double sim_time = 0.0;      // the pause boundary the state was captured at
  std::uint64_t shards = 0;   // GridConfig::shards in effect (0 = classic loop)
  std::vector<std::uint64_t> executed;  // per-shard executed-event counts at T
  std::string state_image;    // encoded Central Server durable state at T

  /// Serialize to / parse from the framed on-disk format. write_file is
  /// atomic (tmp + rename); read_file throws std::runtime_error on a
  /// missing, torn, or wrong-version file.
  void write_file(const std::string& path) const;
  [[nodiscard]] static Checkpoint read_file(const std::string& path);

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static Checkpoint decode(const std::string& body);
};

}  // namespace faucets::store
