// Operation type registry for the state store's WAL (DESIGN.md §14).
//
// One flat u16 namespace shared by every journaled component, grouped by
// high byte so recovery can dispatch on component. Values are part of the
// on-disk format: never renumber, only append.
#pragma once

#include <cstdint>

namespace faucets::store::op {

// 0x01xx — BarterLedger
inline constexpr std::uint16_t kLedgerOpen = 0x0101;      // cluster, credits
inline constexpr std::uint16_t kLedgerTransfer = 0x0102;  // time, home, executor, credits

// 0x02xx — UserAccounts
inline constexpr std::uint16_t kAccountOpen = 0x0201;     // user, funds
inline constexpr std::uint16_t kAccountCharge = 0x0202;   // user, amount
inline constexpr std::uint16_t kAccountDeposit = 0x0203;  // user, amount

// 0x03xx — UserDatabase
inline constexpr std::uint16_t kUserAdd = 0x0301;       // name, id, salt, digest
inline constexpr std::uint16_t kUserPassword = 0x0302;  // name, salt, digest

// 0x04xx — market::PriceHistory
inline constexpr std::uint16_t kPriceRecord = 0x0401;  // time, cluster, procs, work, price

}  // namespace faucets::store::op
