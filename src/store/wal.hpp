// Append-only write-ahead log (DESIGN.md §14).
//
// File layout: an 8-byte magic header ("FAUCWAL" + format version) followed
// by CRC-framed records:
//
//   [u32 length][u32 crc][u16 type][payload: length-2 bytes]
//
// `length` counts the type tag plus the payload; `crc` is CRC-32 over those
// same bytes. The reader walks frames until the first torn or corrupt one
// and discards everything from there on — a record either replays in full
// or not at all, which is the atomicity unit the ledger relies on.
//
// Durability is batched: the writer buffers appends in memory and issues
// one write(2) + optional fsync(2) per `sync_every` records (group commit).
// A crash loses at most the unsynced tail, never the middle of the file.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace faucets::store {

/// One logical record recovered from (or destined for) the log.
struct WalRecord {
  std::uint16_t type = 0;
  std::string payload;
};

enum class SyncPolicy {
  kNone,   // buffered writes, no fsync (tests, benchmarks)
  kBatch,  // fsync every `sync_every` appends — the default group commit
  kAlways, // fsync every append
};

class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Create (or truncate) `path` and write the magic header. Throws
  /// std::runtime_error on I/O failure.
  void open(const std::string& path, SyncPolicy policy = SyncPolicy::kBatch,
            std::size_t sync_every = 64);
  void close();
  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }

  /// Frame and append one record. Buffered; becomes durable at the next
  /// group-commit boundary (or flush()/close()).
  void append(std::uint16_t type, std::string_view payload);

  /// Push the buffer to the OS and, unless SyncPolicy::kNone, fsync.
  void flush();

  [[nodiscard]] std::uint64_t records_appended() const noexcept { return records_; }
  [[nodiscard]] std::uint64_t bytes_framed() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t syncs() const noexcept { return syncs_; }

 private:
  void write_out(bool sync);

  int fd_ = -1;
  SyncPolicy policy_ = SyncPolicy::kBatch;
  std::size_t sync_every_ = 64;
  std::size_t unsynced_ = 0;
  std::string buffer_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t syncs_ = 0;
};

/// Everything read_wal() could salvage from a log file.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// True when the file ended mid-frame or with a CRC mismatch: the torn
  /// tail was discarded and `valid_bytes` marks the last good frame end.
  bool torn = false;
  std::uint64_t valid_bytes = 0;
  /// Empty when the file existed with a valid header; otherwise why nothing
  /// could be read ("missing", "bad magic", ...).
  std::string error;
};

/// Scan `path`, returning every intact record in order. Never throws on
/// torn or corrupt input — salvage what validates, report the rest.
[[nodiscard]] WalReadResult read_wal(const std::string& path);

/// Frame one record exactly as WalWriter does (exposed for the torn-tail
/// property test, which needs to know frame boundaries).
[[nodiscard]] std::string frame_record(std::uint16_t type, std::string_view payload);

/// The 8-byte file magic ("FAUCWAL" + version byte).
[[nodiscard]] std::string_view wal_magic() noexcept;

}  // namespace faucets::store
