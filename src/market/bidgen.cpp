#include "src/market/bidgen.hpp"

#include <algorithm>

namespace faucets::market {

std::optional<double> BaselineBidGenerator::multiplier(const BidContext& ctx) {
  if (ctx.admission == nullptr || !ctx.admission->accept) return std::nullopt;
  return 1.0;
}

std::optional<double> UtilizationBidGenerator::multiplier(const BidContext& ctx) {
  if (ctx.admission == nullptr || !ctx.admission->accept || ctx.cm == nullptr ||
      ctx.contract == nullptr) {
    return std::nullopt;
  }
  // Projected utilization between now and the job's deadline; jobs without
  // deadlines are priced over the job's own expected span.
  double deadline = ctx.contract->payoff.has_deadline()
                        ? ctx.contract->payoff.hard_deadline()
                        : ctx.admission->estimated_completion;
  deadline = std::max(deadline, ctx.now + 1.0);
  const double util = ctx.cm->projected_utilization(ctx.now, deadline);
  const double lo = k_ * (1.0 - alpha_);
  const double hi = k_ * (1.0 + beta_);
  return lo + util * (hi - lo);
}

std::optional<double> MarketAwareBidGenerator::multiplier(const BidContext& ctx) {
  auto base = local_.multiplier(ctx);
  if (!base) return std::nullopt;
  if (ctx.grid_history == nullptr || ctx.cm == nullptr) return base;

  const auto grid_price =
      ctx.grid_history->average_unit_price(ctx.now - ctx.history_lag);
  if (!grid_price || *grid_price <= 0.0) return base;

  // The multiplier that would match the recent grid-wide unit price.
  const double own_cost = ctx.cm->machine().cost_per_cpu_second /
                          std::max(ctx.cm->machine().speed_factor, 1e-9);
  if (own_cost <= 0.0) return base;
  const double market_multiplier = *grid_price / own_cost;
  const double blended =
      (1.0 - market_weight_) * *base + market_weight_ * market_multiplier;
  // Never bid below half the local strategy's floor; greed is bounded too.
  return std::clamp(blended, 0.5 * *base, 4.0 * *base);
}

std::optional<double> FuturesBidGenerator::multiplier(const BidContext& ctx) {
  auto base = local_.multiplier(ctx);
  if (!base) return std::nullopt;
  if (ctx.grid_history == nullptr || ctx.contract == nullptr) return base;

  const double horizon = ctx.contract->payoff.has_deadline()
                             ? ctx.contract->payoff.hard_deadline() - ctx.now
                             : 3600.0;
  const double asof = ctx.now - ctx.history_lag;
  const auto current = ctx.grid_history->average_unit_price(asof);
  const auto future =
      ctx.grid_history->forecast_unit_price(asof, std::max(horizon, 0.0));
  if (!current || !future || *current <= 0.0) return base;

  const double ratio = *future / *current;
  const double scale =
      std::clamp(1.0 + sensitivity_ * (ratio - 1.0), 0.5, 2.0);
  return *base * scale;
}

double contract_price(const cluster::MachineSpec& machine,
                      const qos::QosContract& contract, double multiplier) {
  const double cpu_seconds =
      contract.total_work() / std::max(machine.speed_factor, 1e-9);
  return multiplier * machine.cost_per_cpu_second * cpu_seconds;
}

Bid make_bid(BidId id, const cluster::ClusterManager& cm, EntityId daemon,
             const qos::QosContract& contract,
             const sched::AdmissionDecision& admission, double multiplier,
             double now, double validity) {
  Bid bid;
  bid.id = id;
  bid.cluster = cm.id();
  bid.daemon = daemon;
  bid.declined = false;
  bid.multiplier = multiplier;
  bid.price = contract_price(cm.machine(), contract, multiplier);
  bid.promised_completion = admission.estimated_completion;
  bid.expires_at = now + validity;
  return bid;
}

}  // namespace faucets::market
