// Client-side bid evaluation (§5.3): "each client receives all the bids and
// selects one of the Compute Servers for the job based on a simple criteria
// (such as least cost, or earliest promised completion time)."
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "src/market/bid.hpp"
#include "src/qos/contract.hpp"

namespace faucets::market {

class BidEvaluator {
 public:
  virtual ~BidEvaluator() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Index of the winning bid among `bids`, or nullopt when no bid is
  /// acceptable. Declined and expired bids are never selected.
  [[nodiscard]] virtual std::optional<std::size_t> select(
      const std::vector<Bid>& bids, const qos::QosContract& contract,
      double now) const = 0;

 protected:
  /// Bids that are live (not declined, not expired) and whose promise is
  /// not already past the hard deadline.
  [[nodiscard]] static std::vector<std::size_t> viable(const std::vector<Bid>& bids,
                                                       const qos::QosContract& contract,
                                                       double now);
};

/// Cheapest viable bid.
class LeastCostEvaluator final : public BidEvaluator {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "least-cost"; }
  [[nodiscard]] std::optional<std::size_t> select(const std::vector<Bid>& bids,
                                                  const qos::QosContract& contract,
                                                  double now) const override;
};

/// Earliest promised completion.
class EarliestCompletionEvaluator final : public BidEvaluator {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "earliest-completion";
  }
  [[nodiscard]] std::optional<std::size_t> select(const std::vector<Bid>& bids,
                                                  const qos::QosContract& contract,
                                                  double now) const override;
};

/// Weighted score: maximizes expected payoff at the promised completion
/// minus the price — the client's actual surplus.
class SurplusEvaluator final : public BidEvaluator {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "surplus"; }
  [[nodiscard]] std::optional<std::size_t> select(const std::vector<Bid>& bids,
                                                  const qos::QosContract& contract,
                                                  double now) const override;
};

}  // namespace faucets::market
