#include "src/market/evaluation.hpp"

namespace faucets::market {

std::vector<std::size_t> BidEvaluator::viable(const std::vector<Bid>& bids,
                                              const qos::QosContract& contract,
                                              double now) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < bids.size(); ++i) {
    const Bid& b = bids[i];
    if (b.declined) continue;
    if (b.expires_at > 0.0 && b.expires_at < now) continue;
    if (contract.payoff.has_deadline() &&
        b.promised_completion > contract.payoff.hard_deadline()) {
      continue;  // a promise already past the hard deadline is worthless
    }
    out.push_back(i);
  }
  return out;
}

std::optional<std::size_t> LeastCostEvaluator::select(const std::vector<Bid>& bids,
                                                      const qos::QosContract& contract,
                                                      double now) const {
  std::optional<std::size_t> best;
  for (std::size_t i : viable(bids, contract, now)) {
    if (!best || bids[i].price < bids[*best].price) best = i;
  }
  return best;
}

std::optional<std::size_t> EarliestCompletionEvaluator::select(
    const std::vector<Bid>& bids, const qos::QosContract& contract,
    double now) const {
  std::optional<std::size_t> best;
  for (std::size_t i : viable(bids, contract, now)) {
    if (!best || bids[i].promised_completion < bids[*best].promised_completion) {
      best = i;
    }
  }
  return best;
}

std::optional<std::size_t> SurplusEvaluator::select(const std::vector<Bid>& bids,
                                                    const qos::QosContract& contract,
                                                    double now) const {
  std::optional<std::size_t> best;
  double best_surplus = 0.0;
  for (std::size_t i : viable(bids, contract, now)) {
    const double surplus =
        contract.payoff.value_at(bids[i].promised_completion) - bids[i].price;
    if (!best || surplus > best_surplus) {
      best = i;
      best_surplus = surplus;
    }
  }
  return best;
}

}  // namespace faucets::market
