// Bid types exchanged between clients and Compute Servers (§5.2, §5.3).
#pragma once

#include "src/util/ids.hpp"

namespace faucets::market {

/// A Compute Server's answer to a request-for-bids. The paper: "The bid is
/// converted to Dollar amount by multiplying the CPU-seconds needed for the
/// job with a normalized cost and the multiplier returned by the bidding
/// algorithm."
struct Bid {
  BidId id;
  ClusterId cluster;
  EntityId daemon;                   // where to send the award
  bool declined = false;
  double multiplier = 1.0;           // output of the bid-generation algorithm
  double price = 0.0;                // multiplier * normalized cost * cpu-seconds
  double promised_completion = 0.0;  // absolute sim time
  double expires_at = 0.0;           // bid no longer binding after this

  [[nodiscard]] static Bid decline(ClusterId cluster, EntityId daemon) {
    Bid b;
    b.cluster = cluster;
    b.daemon = daemon;
    b.declined = true;
    return b;
  }
};

}  // namespace faucets::market
