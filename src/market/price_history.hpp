// Contract price history and "grid weather" summaries (§5.2.1): the Faucets
// system maintains a history of every individual contract over recent time
// periods plus histogram summaries (e.g. grouped by the processors jobs
// need), which market-aware bid generators consume.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "src/util/ids.hpp"
#include "src/util/stats.hpp"

namespace faucets::store {
class StateStore;
class Encoder;
class Decoder;
}  // namespace faucets::store

namespace faucets::market {

/// One settled contract: what was paid per unit of work.
struct ContractRecord {
  double time = 0.0;
  ClusterId cluster;
  int procs = 0;             // minimum processors the job needed
  double work = 0.0;         // processor-seconds
  double price = 0.0;        // dollars (or SUs) actually charged
  [[nodiscard]] double unit_price() const noexcept {
    return work > 0.0 ? price / work : 0.0;
  }
};

class PriceHistory {
 public:
  explicit PriceHistory(std::size_t capacity = 4096, double window = 24.0 * 3600.0)
      : capacity_(capacity), window_(window) {}

  void record(ContractRecord record);

  /// Mean unit price over contracts settled in the last `window` seconds
  /// before `now`. nullopt when no history is available.
  [[nodiscard]] std::optional<double> average_unit_price(double now) const;

  /// Mean unit price restricted to jobs whose processor demand falls in
  /// [procs_lo, procs_hi] — the paper's histogram grouping by min/max
  /// processors needed.
  [[nodiscard]] std::optional<double> average_unit_price_for_size(double now,
                                                                  int procs_lo,
                                                                  int procs_hi) const;

  /// Histogram of unit prices over the current window (8 bins between the
  /// observed min and max).
  [[nodiscard]] Histogram unit_price_histogram(double now) const;

  /// Least-squares linear trend of unit price over the window:
  /// (price at `now`, slope per second). nullopt with fewer than 2 points.
  /// This is the "trends for future usage" feed of §5.2.1.
  [[nodiscard]] std::optional<std::pair<double, double>> unit_price_trend(
      double now) const;

  /// Extrapolated unit price at now + horizon (clamped to >= 0) — the
  /// "futures market for perishable commodities" signal of §1.
  [[nodiscard]] std::optional<double> forecast_unit_price(double now,
                                                          double horizon) const;

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Unit price of the most recently settled contract (0 with no history) —
  /// the live "grid weather" signal the time-series sampler probes.
  [[nodiscard]] double last_unit_price() const noexcept {
    return records_.empty() ? 0.0 : records_.back().unit_price();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] double window() const noexcept { return window_; }

  /// Keep an append-only journal of every record() alongside the bounded
  /// deque. Sharded runs enable this on the Central Server's history so each
  /// shard's lagged replica can replay journal entries incrementally at
  /// lookahead barriers and reproduce the exact same deque state (including
  /// capacity eviction order).
  void enable_journal() { journal_enabled_ = true; }
  [[nodiscard]] const std::vector<ContractRecord>& journal() const noexcept {
    return journal_;
  }

  /// Journal entries are addressed by *global* index: compaction drops an
  /// applied prefix but keeps the indexing stable, so replica cursors keep
  /// working across compactions.
  [[nodiscard]] std::size_t journal_size() const noexcept {
    return journal_base_ + journal_.size();
  }
  [[nodiscard]] const ContractRecord& journal_at(std::size_t global_i) const {
    return journal_.at(global_i - journal_base_);
  }
  /// Drop journal entries below global index `upto` (no-op if already past).
  void compact_journal(std::size_t upto);
  [[nodiscard]] std::size_t journal_base() const noexcept { return journal_base_; }

  /// Store wiring (op 0x0401, DESIGN.md §14).
  void set_store(store::StateStore* store) noexcept { store_ = store; }
  /// Encodes the bounded deque only — the replica journal is shard-local
  /// runtime scaffolding, rebuilt naturally after a restore.
  void save(store::Encoder& out) const;
  void load(store::Decoder& in);
  bool apply_op(std::uint16_t type, store::Decoder& in);

 private:
  void evict(double now);

  std::size_t capacity_;
  double window_;
  std::deque<ContractRecord> records_;  // time-ordered
  bool journal_enabled_ = false;
  std::vector<ContractRecord> journal_;
  std::size_t journal_base_ = 0;  // global index of journal_[0]
  store::StateStore* store_ = nullptr;
};

}  // namespace faucets::market
