// Contract price history and "grid weather" summaries (§5.2.1): the Faucets
// system maintains a history of every individual contract over recent time
// periods plus histogram summaries (e.g. grouped by the processors jobs
// need), which market-aware bid generators consume.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "src/util/ids.hpp"
#include "src/util/stats.hpp"

namespace faucets::market {

/// One settled contract: what was paid per unit of work.
struct ContractRecord {
  double time = 0.0;
  ClusterId cluster;
  int procs = 0;             // minimum processors the job needed
  double work = 0.0;         // processor-seconds
  double price = 0.0;        // dollars (or SUs) actually charged
  [[nodiscard]] double unit_price() const noexcept {
    return work > 0.0 ? price / work : 0.0;
  }
};

class PriceHistory {
 public:
  explicit PriceHistory(std::size_t capacity = 4096, double window = 24.0 * 3600.0)
      : capacity_(capacity), window_(window) {}

  void record(ContractRecord record);

  /// Mean unit price over contracts settled in the last `window` seconds
  /// before `now`. nullopt when no history is available.
  [[nodiscard]] std::optional<double> average_unit_price(double now) const;

  /// Mean unit price restricted to jobs whose processor demand falls in
  /// [procs_lo, procs_hi] — the paper's histogram grouping by min/max
  /// processors needed.
  [[nodiscard]] std::optional<double> average_unit_price_for_size(double now,
                                                                  int procs_lo,
                                                                  int procs_hi) const;

  /// Histogram of unit prices over the current window (8 bins between the
  /// observed min and max).
  [[nodiscard]] Histogram unit_price_histogram(double now) const;

  /// Least-squares linear trend of unit price over the window:
  /// (price at `now`, slope per second). nullopt with fewer than 2 points.
  /// This is the "trends for future usage" feed of §5.2.1.
  [[nodiscard]] std::optional<std::pair<double, double>> unit_price_trend(
      double now) const;

  /// Extrapolated unit price at now + horizon (clamped to >= 0) — the
  /// "futures market for perishable commodities" signal of §1.
  [[nodiscard]] std::optional<double> forecast_unit_price(double now,
                                                          double horizon) const;

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Unit price of the most recently settled contract (0 with no history) —
  /// the live "grid weather" signal the time-series sampler probes.
  [[nodiscard]] double last_unit_price() const noexcept {
    return records_.empty() ? 0.0 : records_.back().unit_price();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] double window() const noexcept { return window_; }

  /// Keep an append-only journal of every record() alongside the bounded
  /// deque. Sharded runs enable this on the Central Server's history so each
  /// shard's lagged replica can replay journal entries incrementally at
  /// lookahead barriers and reproduce the exact same deque state (including
  /// capacity eviction order).
  void enable_journal() { journal_enabled_ = true; }
  [[nodiscard]] const std::vector<ContractRecord>& journal() const noexcept {
    return journal_;
  }

 private:
  void evict(double now);

  std::size_t capacity_;
  double window_;
  std::deque<ContractRecord> records_;  // time-ordered
  bool journal_enabled_ = false;
  std::vector<ContractRecord> journal_;
};

}  // namespace faucets::market
