// Bid-generation algorithms (§5.2). These run at individual Compute Servers
// and reflect each server's orientation to risk and profit. The paper
// publishes the generic interface so strategies can be tested against each
// other — BidGenerator is that interface.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "src/cluster/server.hpp"
#include "src/market/bid.hpp"
#include "src/market/price_history.hpp"

namespace faucets::market {

/// Everything a bid generator may consult: local cluster state plus the
/// global "grid weather" the Faucets system offers (§5.2.1).
struct BidContext {
  double now = 0.0;
  const cluster::ClusterManager* cm = nullptr;
  const qos::QosContract* contract = nullptr;
  const sched::AdmissionDecision* admission = nullptr;
  const PriceHistory* grid_history = nullptr;  // may be null (no FS feed)
  /// Propagation delay of the grid-weather feed: history queries are issued
  /// at (now - history_lag). Zero with a live feed; a sharded run sets it to
  /// the lookahead so every shard sees the same, slightly stale, weather
  /// regardless of how entities were partitioned.
  double history_lag = 0.0;
};

class BidGenerator {
 public:
  virtual ~BidGenerator() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// The bid multiplier for this job, or nullopt to decline even though the
  /// scheduler could admit it (e.g. the price would be uneconomic).
  [[nodiscard]] virtual std::optional<double> multiplier(const BidContext& ctx) = 0;
};

/// "A baseline strategy that always returns a multiplier of 1.0 if it can
/// run the job."
class BaselineBidGenerator final : public BidGenerator {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "baseline"; }
  [[nodiscard]] std::optional<double> multiplier(const BidContext& ctx) override;
};

/// "Another implemented strategy returns a multiplier linearly interpolated
/// between k(1-alpha) and k(1+beta) depending on what the average system
/// utilization is likely to be between the current time and the deadline of
/// the proposed job." Defaults are the paper's current values: k=1,
/// alpha=0.5, beta=2.0.
class UtilizationBidGenerator final : public BidGenerator {
 public:
  explicit UtilizationBidGenerator(double k = 1.0, double alpha = 0.5,
                                   double beta = 2.0)
      : k_(k), alpha_(alpha), beta_(beta) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "utilization"; }
  [[nodiscard]] std::optional<double> multiplier(const BidContext& ctx) override;

  [[nodiscard]] double k() const noexcept { return k_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] double beta() const noexcept { return beta_; }

 private:
  double k_;
  double alpha_;
  double beta_;
};

/// Future-work strategy the paper sketches: the bid also depends on
/// non-local factors — "what is the average price of similar contracts in
/// the recent past, in the whole system?" Scales the utilization bid toward
/// the observed grid price.
class MarketAwareBidGenerator final : public BidGenerator {
 public:
  explicit MarketAwareBidGenerator(double k = 1.0, double alpha = 0.5,
                                   double beta = 2.0, double market_weight = 0.5)
      : local_(k, alpha, beta), market_weight_(market_weight) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "market-aware"; }
  [[nodiscard]] std::optional<double> multiplier(const BidContext& ctx) override;

 private:
  UtilizationBidGenerator local_;
  double market_weight_;
};

/// Futures bidder (§1's "futures market for perishable commodities"): the
/// utilization bid, scaled by where the grid-wide price is heading over the
/// job's own horizon. Rising prices mean capacity is getting scarce — hold
/// out for more; falling prices mean sell cycles now.
class FuturesBidGenerator final : public BidGenerator {
 public:
  explicit FuturesBidGenerator(double k = 1.0, double alpha = 0.5, double beta = 2.0,
                               double sensitivity = 1.0)
      : local_(k, alpha, beta), sensitivity_(sensitivity) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "futures"; }
  [[nodiscard]] std::optional<double> multiplier(const BidContext& ctx) override;

 private:
  UtilizationBidGenerator local_;
  double sensitivity_;
};

/// Turn a multiplier into a full bid. Price = multiplier x normalized cost x
/// CPU-seconds the job needs on this machine.
[[nodiscard]] Bid make_bid(BidId id, const cluster::ClusterManager& cm,
                           EntityId daemon, const qos::QosContract& contract,
                           const sched::AdmissionDecision& admission,
                           double multiplier, double now, double validity);

/// Price a contract at a given multiplier on a given machine (shared by
/// make_bid and the accounting tests).
[[nodiscard]] double contract_price(const cluster::MachineSpec& machine,
                                    const qos::QosContract& contract,
                                    double multiplier);

}  // namespace faucets::market
