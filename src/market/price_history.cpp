#include "src/market/price_history.hpp"

#include <algorithm>

#include "src/store/codec.hpp"
#include "src/store/ops.hpp"
#include "src/store/store.hpp"

namespace faucets::market {

namespace {

void put_record(store::Encoder& e, const ContractRecord& r) {
  e.put_f64(r.time);
  e.put_u64(r.cluster.value());
  e.put_u32(static_cast<std::uint32_t>(r.procs));
  e.put_f64(r.work);
  e.put_f64(r.price);
}

ContractRecord get_record(store::Decoder& d) {
  ContractRecord r;
  r.time = d.get_f64();
  r.cluster = ClusterId{d.get_u64()};
  r.procs = static_cast<int>(d.get_u32());
  r.work = d.get_f64();
  r.price = d.get_f64();
  return r;
}

}  // namespace

void PriceHistory::record(ContractRecord record) {
  if (journal_enabled_) journal_.push_back(record);
  if (store_ != nullptr) {
    store::Encoder e;
    put_record(e, record);
    store_->append(store::op::kPriceRecord, e.bytes());
  }
  records_.push_back(record);
  while (records_.size() > capacity_) records_.pop_front();
  evict(record.time);
}

void PriceHistory::compact_journal(std::size_t upto) {
  if (upto <= journal_base_) return;
  const std::size_t drop = std::min(upto - journal_base_, journal_.size());
  journal_.erase(journal_.begin(),
                 journal_.begin() + static_cast<std::ptrdiff_t>(drop));
  journal_base_ += drop;
}

void PriceHistory::save(store::Encoder& out) const {
  out.put_u32(static_cast<std::uint32_t>(records_.size()));
  for (const ContractRecord& r : records_) put_record(out, r);
}

void PriceHistory::load(store::Decoder& in) {
  records_.clear();
  const std::uint32_t n = in.get_u32();
  for (std::uint32_t i = 0; i < n; ++i) records_.push_back(get_record(in));
}

bool PriceHistory::apply_op(std::uint16_t type, store::Decoder& in) {
  if (type != store::op::kPriceRecord) return false;
  const ContractRecord r = get_record(in);
  if (journal_enabled_) journal_.push_back(r);
  records_.push_back(r);
  while (records_.size() > capacity_) records_.pop_front();
  evict(r.time);
  return true;
}

void PriceHistory::evict(double now) {
  while (!records_.empty() && records_.front().time < now - window_) {
    records_.pop_front();
  }
}

std::optional<double> PriceHistory::average_unit_price(double now) const {
  // The r.time <= now bound matters only for sharded replicas, which may
  // already hold records from inside the lookahead window ahead of the
  // effective (lagged) query time; a live history never has future records.
  OnlineStats stats;
  for (const auto& r : records_) {
    if (r.time >= now - window_ && r.time <= now && r.work > 0.0) {
      stats.add(r.unit_price());
    }
  }
  if (stats.empty()) return std::nullopt;
  return stats.mean();
}

std::optional<double> PriceHistory::average_unit_price_for_size(double now,
                                                                int procs_lo,
                                                                int procs_hi) const {
  OnlineStats stats;
  for (const auto& r : records_) {
    if (r.time >= now - window_ && r.time <= now && r.work > 0.0 &&
        r.procs >= procs_lo && r.procs <= procs_hi) {
      stats.add(r.unit_price());
    }
  }
  if (stats.empty()) return std::nullopt;
  return stats.mean();
}

std::optional<std::pair<double, double>> PriceHistory::unit_price_trend(
    double now) const {
  // Ordinary least squares of unit price against (time - now).
  double n = 0.0;
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (const auto& r : records_) {
    if (r.time < now - window_ || r.time > now || r.work <= 0.0) continue;
    const double x = r.time - now;
    const double y = r.unit_price();
    n += 1.0;
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  if (n < 2.0) return std::nullopt;
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return std::nullopt;  // all at one instant
  const double slope = (n * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / n;  // value at x = 0, i.e. now
  return std::make_pair(intercept, slope);
}

std::optional<double> PriceHistory::forecast_unit_price(double now,
                                                        double horizon) const {
  const auto trend = unit_price_trend(now);
  if (!trend) return std::nullopt;
  return std::max(0.0, trend->first + trend->second * horizon);
}

Histogram PriceHistory::unit_price_histogram(double now) const {
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  for (const auto& r : records_) {
    if (r.time < now - window_ || r.time > now || r.work <= 0.0) continue;
    const double p = r.unit_price();
    if (first) {
      lo = hi = p;
      first = false;
    } else {
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
  }
  if (first || hi <= lo) hi = lo + 1.0;
  Histogram h{lo, hi, 8};
  for (const auto& r : records_) {
    if (r.time >= now - window_ && r.time <= now && r.work > 0.0) {
      h.add(r.unit_price());
    }
  }
  return h;
}

}  // namespace faucets::market
