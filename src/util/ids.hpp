// Strongly typed integer identifiers for the entities of the Faucets system.
//
// Every subsystem (jobs, clusters, users, bids, simulation entities) gets its
// own ID type so that a JobId can never be passed where a ClusterId is
// expected. IDs are value types: trivially copyable, hashable, and ordered.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace faucets {

/// CRTP-free tagged identifier. `Tag` is an empty struct that makes each
/// instantiation a distinct type.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint64_t;

  /// Sentinel value used for "no id assigned yet".
  static constexpr underlying_type kInvalid = ~underlying_type{0};

  constexpr Id() noexcept = default;
  constexpr explicit Id(underlying_type value) noexcept : value_(value) {}

  [[nodiscard]] constexpr underlying_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }

  friend constexpr bool operator==(Id a, Id b) noexcept { return a.value_ == b.value_; }
  friend constexpr auto operator<=>(Id a, Id b) noexcept { return a.value_ <=> b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  underlying_type value_ = kInvalid;
};

/// Monotonic generator for a given ID type. Not thread-safe by design: the
/// simulation is single-threaded and deterministic; parallel experiment
/// sweeps each own their private generators.
template <typename IdType>
class IdGenerator {
 public:
  [[nodiscard]] IdType next() noexcept { return IdType{next_++}; }
  void reset(typename IdType::underlying_type start = 0) noexcept { next_ = start; }
  /// The value the next call to next() would return, for serialization.
  [[nodiscard]] typename IdType::underlying_type peek() const noexcept { return next_; }

 private:
  typename IdType::underlying_type next_ = 0;
};

struct JobTag {};
struct ClusterTag {};
struct UserTag {};
struct BidTag {};
struct EntityTag {};
struct SessionTag {};
struct RequestTag {};
struct SpanTag {};
struct ReservationTag {};

using JobId = Id<JobTag>;
using ClusterId = Id<ClusterTag>;
using UserId = Id<UserTag>;
using BidId = Id<BidTag>;
using EntityId = Id<EntityTag>;
using SessionId = Id<SessionTag>;
using RequestId = Id<RequestTag>;
/// Identifier of one lifecycle span in obs::SpanTracker. Lives here so the
/// wire protocol can carry span links without depending on the obs headers.
using SpanId = Id<SpanTag>;
/// A daemon-side capacity lease in the two-phase award (reserve -> commit).
using ReservationId = Id<ReservationTag>;

}  // namespace faucets

namespace std {
template <typename Tag>
struct hash<faucets::Id<Tag>> {
  size_t operator()(faucets::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
