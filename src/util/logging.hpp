// Minimal leveled logging. Silent by default so tests and benchmarks stay
// clean; examples turn it on to narrate what the grid is doing.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace faucets {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide log configuration. The level is an atomic (checked on every
/// statement, lock-free); the sink write is mutex-guarded so concurrent
/// sweep workers cannot tear each other's lines even on platforms where a
/// single ostream insertion is not atomic.
class Logging {
 public:
  static LogLevel level() noexcept;
  static void set_level(LogLevel level) noexcept;
  [[nodiscard]] static bool enabled(LogLevel level) noexcept { return level >= Logging::level(); }
  static std::string_view name(LogLevel level) noexcept;

  /// Redirect log output (nullptr restores std::clog). The stream must
  /// outlive all logging; callers hand over a stream they stop using
  /// directly (the logging mutex only guards writes made through here).
  static void set_sink(std::ostream* sink) noexcept;

  /// Write one composed line to the sink under the logging mutex.
  static void write(const std::string& line);
};

/// One log statement; flushes the composed line on destruction. The enabled
/// check is latched once in the constructor: a disabled line composes nothing
/// at all, and an enabled one reaches the sink as a single mutex-guarded
/// write so lines from concurrent experiment sweeps cannot interleave
/// mid-line.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : enabled_(Logging::enabled(level)) {
    if (enabled_) {
      stream_ << "[" << Logging::name(level) << "] " << component << ": ";
    }
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (enabled_) {
      stream_ << '\n';
      Logging::write(stream_.str());
    }
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace faucets

#define FAUCETS_LOG(level, component)                     \
  if (!::faucets::Logging::enabled(level)) {              \
  } else                                                  \
    ::faucets::LogLine(level, component)

#define FAUCETS_DEBUG(component) FAUCETS_LOG(::faucets::LogLevel::kDebug, component)
#define FAUCETS_INFO(component) FAUCETS_LOG(::faucets::LogLevel::kInfo, component)
#define FAUCETS_WARN(component) FAUCETS_LOG(::faucets::LogLevel::kWarn, component)
