// Minimal leveled logging. Silent by default so tests and benchmarks stay
// clean; examples turn it on to narrate what the grid is doing.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace faucets {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide log configuration.
class Logging {
 public:
  static LogLevel level() noexcept;
  static void set_level(LogLevel level) noexcept;
  [[nodiscard]] static bool enabled(LogLevel level) noexcept { return level >= Logging::level(); }
  static std::string_view name(LogLevel level) noexcept;
};

/// One log statement; flushes the composed line on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) : level_(level) {
    stream_ << "[" << Logging::name(level) << "] " << component << ": ";
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (Logging::enabled(level_)) {
      stream_ << '\n';
      std::clog << stream_.str();
    }
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (Logging::enabled(level_)) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace faucets

#define FAUCETS_LOG(level, component)                     \
  if (!::faucets::Logging::enabled(level)) {              \
  } else                                                  \
    ::faucets::LogLine(level, component)

#define FAUCETS_DEBUG(component) FAUCETS_LOG(::faucets::LogLevel::kDebug, component)
#define FAUCETS_INFO(component) FAUCETS_LOG(::faucets::LogLevel::kInfo, component)
#define FAUCETS_WARN(component) FAUCETS_LOG(::faucets::LogLevel::kWarn, component)
