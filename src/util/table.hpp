// ASCII table writer used by the benchmark harnesses to print the rows each
// experiment in DESIGN.md defines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace faucets {

/// Collects rows of string cells and renders them with aligned columns.
/// Numeric helpers format with fixed precision so benchmark output diffs
/// cleanly between runs.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(std::string text);
  Table& cell(double value, int precision = 2);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(int value);

  /// Render with a header rule and column alignment.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace faucets
