#include "src/util/stats.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

namespace faucets {

void OnlineStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
}

double Samples::mean() const noexcept {
  if (data_.empty()) return 0.0;
  return sum() / static_cast<double>(data_.size());
}

double Samples::sum() const noexcept {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Samples::percentile(double p) const {
  if (data_.empty()) return 0.0;
  ensure_sorted();
  if (data_.size() == 1) return data_.front();
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(data_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= data_.size()) return data_.back();
  return data_[lo] + frac * (data_[lo + 1] - data_[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  std::size_t idx = 0;
  if (width > 0 && x > lo_) {
    idx = static_cast<std::size_t>((x - lo_) / width);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return bin_lo(i + 1);
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i != 0) os << " ";
    os << counts_[i];
  }
  os << "]";
  return os.str();
}

void TimeWeightedStats::record(double time, double value) noexcept {
  if (!started_) {
    started_ = true;
    start_time_ = last_time_ = time;
    last_value_ = value;
    return;
  }
  if (time > last_time_) {
    weighted_sum_ += last_value_ * (time - last_time_);
    last_time_ = time;
  }
  last_value_ = value;
}

void TimeWeightedStats::finish(double end_time) noexcept {
  if (!started_) return;
  if (end_time > last_time_) {
    weighted_sum_ += last_value_ * (end_time - last_time_);
    last_time_ = end_time;
  }
}

double TimeWeightedStats::time_weighted_mean() const noexcept {
  const double d = duration();
  return d <= 0.0 ? last_value_ : weighted_sum_ / d;
}

}  // namespace faucets
