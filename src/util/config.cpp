#include "src/util/config.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace faucets {

std::string trim(const std::string& text) {
  const auto first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return {};
  const auto last = text.find_last_not_of(" \t\r\n");
  return text.substr(first, last - first + 1);
}

std::optional<std::string> ConfigSection::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ConfigSection::get_string(const std::string& key,
                                      const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double ConfigSection::get_double(const std::string& key, double fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  try {
    std::size_t used = 0;
    const double value = std::stod(*raw, &used);
    if (trim(raw->substr(used)).empty()) return value;
  } catch (const std::exception&) {
  }
  throw std::invalid_argument("config: [" + name_ + "] " + key +
                              " is not a number: '" + *raw + "'");
}

long ConfigSection::get_int(const std::string& key, long fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  try {
    std::size_t used = 0;
    const long value = std::stol(*raw, &used);
    if (trim(raw->substr(used)).empty()) return value;
  } catch (const std::exception&) {
  }
  throw std::invalid_argument("config: [" + name_ + "] " + key +
                              " is not an integer: '" + *raw + "'");
}

bool ConfigSection::get_bool(const std::string& key, bool fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  std::string lower = trim(*raw);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "true" || lower == "yes" || lower == "on" || lower == "1") return true;
  if (lower == "false" || lower == "no" || lower == "off" || lower == "0") {
    return false;
  }
  throw std::invalid_argument("config: [" + name_ + "] " + key +
                              " is not a boolean: '" + *raw + "'");
}

ConfigFile ConfigFile::parse(std::istream& in) {
  ConfigFile out;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments.
    for (const char marker : {'#', ';'}) {
      const auto pos = line.find(marker);
      if (pos != std::string::npos) line.erase(pos);
    }
    const std::string text = trim(line);
    if (text.empty()) continue;

    if (text.front() == '[') {
      if (text.back() != ']' || text.size() < 3) {
        throw std::invalid_argument("config line " + std::to_string(line_number) +
                                    ": malformed section header '" + text + "'");
      }
      out.sections_.emplace_back(trim(text.substr(1, text.size() - 2)));
      continue;
    }

    const auto eq = text.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("config line " + std::to_string(line_number) +
                                  ": expected key = value, got '" + text + "'");
    }
    if (out.sections_.empty()) {
      throw std::invalid_argument("config line " + std::to_string(line_number) +
                                  ": key outside any section");
    }
    out.sections_.back().set(trim(text.substr(0, eq)), trim(text.substr(eq + 1)));
  }
  return out;
}

ConfigFile ConfigFile::parse_string(const std::string& text) {
  std::istringstream stream{text};
  return parse(stream);
}

std::vector<const ConfigSection*> ConfigFile::sections(const std::string& name) const {
  std::vector<const ConfigSection*> out;
  for (const auto& s : sections_) {
    if (s.name() == name) out.push_back(&s);
  }
  return out;
}

const ConfigSection* ConfigFile::section(const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

}  // namespace faucets
