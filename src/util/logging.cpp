#include "src/util/logging.hpp"

#include <atomic>

namespace faucets {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
}  // namespace

LogLevel Logging::level() noexcept { return g_level.load(std::memory_order_relaxed); }

void Logging::set_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

std::string_view Logging::name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace faucets
