#include "src/util/logging.hpp"

#include <atomic>
#include <mutex>

namespace faucets {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
// Guards g_sink and every write through it. A plain pointer + mutex (not an
// atomic pointer) because readers must hold the lock across the whole write
// anyway — retargeting mid-line must not split a line across sinks.
std::mutex g_sink_mutex;
std::ostream* g_sink = nullptr;  // nullptr = std::clog
}  // namespace

LogLevel Logging::level() noexcept { return g_level.load(std::memory_order_relaxed); }

void Logging::set_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

void Logging::set_sink(std::ostream* sink) noexcept {
  std::lock_guard lock(g_sink_mutex);
  g_sink = sink;
}

void Logging::write(const std::string& line) {
  std::lock_guard lock(g_sink_mutex);
  (g_sink != nullptr ? *g_sink : std::clog) << line;
}

std::string_view Logging::name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace faucets
