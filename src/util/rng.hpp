// Deterministic random number generation for reproducible experiments.
//
// The simulator must produce identical results for identical seeds across
// platforms, so we implement our own generator (xoshiro256**) and sampling
// routines instead of relying on the unspecified algorithms behind
// std::*_distribution.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace faucets {

/// SplitMix64 finalizer: bijective 64-bit mixing, the same construction the
/// Rng below uses to expand its seed. Exposed so seed derivation and RNG
/// seeding share one primitive.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic seed derivation for parameter sweeps: run (grid point p,
/// replicate r) of a sweep rooted at `root` always gets the same seed, no
/// matter how many worker threads execute the sweep or in what order runs
/// complete. The derivation chains SplitMix64 over (root, p, r) with
/// distinct salts so neighbouring points and replicates land in unrelated
/// parts of the sequence (a plain `root + p * R + r` offset would hand
/// adjacent runs overlapping xoshiro streams).
class SeedSequence {
 public:
  constexpr explicit SeedSequence(std::uint64_t root) noexcept : root_(root) {}

  [[nodiscard]] constexpr std::uint64_t root() const noexcept { return root_; }

  /// Seed for replicate `replicate` of grid point `point`. Pure function of
  /// (root, point, replicate): stable across processes, thread counts, and
  /// execution order.
  [[nodiscard]] constexpr std::uint64_t at(std::uint64_t point,
                                           std::uint64_t replicate) const noexcept {
    std::uint64_t z = splitmix64(root_ ^ 0x8c2f9d7845aa1b3dULL);
    z = splitmix64(z ^ splitmix64(point ^ 0x1f83d9abfb41bd6bULL));
    z = splitmix64(z ^ splitmix64(replicate ^ 0x5be0cd19137e2179ULL));
    return z;
  }

 private:
  std::uint64_t root_;
};

/// xoshiro256** by Blackman & Vigna: fast, high quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  /// Re-initialize state from a single seed via SplitMix64, as recommended
  /// by the xoshiro authors.
  void reseed(std::uint64_t seed) noexcept {
    auto splitmix = [&seed]() noexcept {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& s : state_) s = splitmix();
  }

  [[nodiscard]] std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface so the class also works with <random>.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    // Lemire's multiply-shift rejection method for unbiased bounded ints.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto low = static_cast<std::uint64_t>(m);
    if (low < range) {
      const std::uint64_t threshold = -range % range;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * range;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential with the given mean (= 1/rate). Used for Poisson arrivals.
  [[nodiscard]] double exponential(double mean) noexcept {
    return -mean * std::log1p(-uniform());
  }

  /// Standard normal via Box-Muller (single value; we do not cache the pair
  /// so the stream stays easy to reason about).
  [[nodiscard]] double normal() noexcept {
    const double u1 = 1.0 - uniform();  // (0, 1]
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Lognormal parameterized by the underlying normal's mu/sigma. Job work
  /// sizes in parallel workloads are classically lognormal.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Weibull(shape k, scale lambda): inter-arrival model used in several
  /// supercomputer trace studies.
  [[nodiscard]] double weibull(double shape, double scale) noexcept {
    return scale * std::pow(-std::log1p(-uniform()), 1.0 / shape);
  }

  /// Pareto distribution with given minimum and tail index alpha.
  [[nodiscard]] double pareto(double minimum, double alpha) noexcept {
    return minimum / std::pow(1.0 - uniform(), 1.0 / alpha);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace faucets
