// Online statistics, histograms and percentile summaries used by the
// scheduler metrics, the market price history and the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace faucets {

/// Numerically stable running mean/variance (Welford), plus min/max.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double sum() const noexcept { return mean() * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile summary: stores every sample. Fine for simulation-scale
/// data (up to a few million points).
class Samples {
 public:
  void add(double x) { data_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { data_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double sum() const noexcept;

  /// Linear-interpolation percentile, p in [0, 100]. Returns 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double min() const { return percentile(0.0); }
  [[nodiscard]] double max() const { return percentile(100.0); }

  [[nodiscard]] const std::vector<double>& values() const noexcept { return data_; }

 private:
  mutable std::vector<double> data_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi); samples outside are clamped into the
/// first/last bin. The market's "grid weather" summaries (§5.2.1 of the
/// paper) are built from these.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count_in_bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;

  /// Render as a compact single-line summary, e.g. for AppSpector displays.
  [[nodiscard]] std::string to_string() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Time-weighted average of a piecewise-constant signal, e.g. the number of
/// busy processors over time. The signal's value is set at time points; the
/// mean is weighted by how long each value was held.
class TimeWeightedStats {
 public:
  /// Record that the signal takes `value` starting at `time`. Times must be
  /// non-decreasing.
  void record(double time, double value) noexcept;
  /// Close the signal at `end_time` so the final segment is counted.
  void finish(double end_time) noexcept;

  [[nodiscard]] double time_weighted_mean() const noexcept;
  [[nodiscard]] double duration() const noexcept { return last_time_ - start_time_; }
  [[nodiscard]] bool started() const noexcept { return started_; }

 private:
  bool started_ = false;
  double start_time_ = 0.0;
  double last_time_ = 0.0;
  double last_value_ = 0.0;
  double weighted_sum_ = 0.0;
};

}  // namespace faucets
