#include "src/util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace faucets {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string text) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& text = i < cells.size() ? cells[i] : std::string{};
      os << (i == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[i]))
         << std::left << text;
    }
    os << " |\n";
  };

  print_row(headers_);
  for (std::size_t i = 0; i < widths.size(); ++i) {
    os << (i == 0 ? "|" : "|") << std::string(widths[i] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace faucets
