// Minimal INI-style configuration parser for scenario files.
//
// Sections may repeat (each [cluster] block describes one Compute Server).
// Lines are `key = value`; `#` and `;` start comments; whitespace is
// trimmed. No escapes, no quoting — scenario files are simple.
#pragma once

#include <istream>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace faucets {

class ConfigSection {
 public:
  explicit ConfigSection(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  void set(std::string key, std::string value) {
    values_[std::move(key)] = std::move(value);
  }
  [[nodiscard]] bool has(const std::string& key) const { return values_.contains(key); }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  /// Throws std::invalid_argument when present but unparsable.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& values() const noexcept {
    return values_;
  }

 private:
  std::string name_;
  std::map<std::string, std::string> values_;
};

class ConfigFile {
 public:
  /// Parse from a stream. Throws std::invalid_argument on malformed lines
  /// (with line numbers in the message).
  static ConfigFile parse(std::istream& in);
  static ConfigFile parse_string(const std::string& text);

  /// All sections named `name`, in file order.
  [[nodiscard]] std::vector<const ConfigSection*> sections(const std::string& name) const;
  /// First section named `name`, or nullptr.
  [[nodiscard]] const ConfigSection* section(const std::string& name) const;
  [[nodiscard]] std::size_t section_count() const noexcept { return sections_.size(); }

 private:
  std::vector<ConfigSection> sections_;
};

/// Trim leading/trailing whitespace (helper, exposed for tests).
[[nodiscard]] std::string trim(const std::string& text);

}  // namespace faucets
